package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/faults"
	"llbpx/internal/serve"
	"llbpx/internal/stats"
	"llbpx/internal/wire"
)

// TestClusterChaosSuite is the cluster tier's acceptance drill, the
// ISSUE's bar verbatim: under injected forward and transfer faults, one
// backend is killed mid-run (SIGTERM-style: drain-checkpoint, then gone)
// and another joins mid-run (≥1 live migration each way), and every
// session — HTTP-fronted and wire-fronted alike — still finishes with
// server-side statistics that match a local, unbroken sim.Run bit for
// bit: exact counters, exact MPKI, zero tolerance.
//
// The timeline:
//
//	phase 1   6 sessions stream their first third over {b1, b2},
//	          with cluster.forward faults injecting partitions
//	join      b3 joins; live migrations pull sessions onto it, with
//	          the first cluster.transfer attempts injected to fail
//	phase 2   second third over {b1, b2, b3}
//	kill      b1 drains (checkpoints to the shared snapshot dir) and
//	          dies without telling the gateway; the death verdict
//	          reroutes its sessions, which warm-restore from disk and
//	          resynchronize their cursors
//	phase 3   final third over {b2, b3}, close, compare
func TestClusterChaosSuite(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(20260808)
	// Forward partitions: 6% of forwards fail, bounded so the tail of the
	// run (and the close handshakes) eventually quiesces.
	inj.Set(FaultForward, faults.Rule{ErrRate: 0.06, MaxErrors: 25})
	// Transfers: the first two migration attempts fail outright — every
	// relocation path must survive a flaky transfer link.
	inj.Set(FaultTransfer, faults.Rule{ErrRate: 1, MaxErrors: 2})

	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	b3 := startBackend(t, "b3", dir)

	cfg := fastCfg(b1.backend(), b2.backend())
	cfg.Faults = inj
	cfg.HealthFails = 3
	// A slow prober runs so a backend spuriously killed by injected
	// faults is revived instead of staying lost for the whole run.
	cfg.HealthEvery = 50 * time.Millisecond
	g := newGateway(t, cfg)
	hclient := gatewayHTTP(t, g)
	wclient := gatewayWire(t, g)

	const instr = 45_000
	const batchSize = 512
	type sess struct {
		id        string
		wireFront bool // streams through the binary frontend, own batch numbers
		branches  []core.Branch
		batchNum  uint64
	}
	workloads := []string{"kafka", "tomcat", "spring", "delta", "chirper", "whiskey"}
	var sessions []*sess
	for i, wl := range workloads {
		sessions = append(sessions, &sess{
			id:        fmt.Sprintf("chaos-%d-%s", i, wl),
			wireFront: i%3 == 2,
			branches:  workloadBranches(t, wl, instr),
		})
	}

	ctx := context.Background()
	// send streams branches[from:to) of s through its frontend,
	// interleaved round-robin across sessions so fault exposure spreads.
	send := func(s *sess, from, to int) {
		t.Helper()
		for i := from; i < to; i += batchSize {
			j := i + batchSize
			if j > to {
				j = to
			}
			if s.wireFront {
				s.batchNum++
				var ok wire.PredictOK
				if err := wclient.Predict(ctx, s.id, "tsl-8k", s.batchNum, s.branches[i:j], &ok); err != nil {
					t.Fatalf("wire predict %s #%d: %v", s.id, s.batchNum, err)
				}
			} else {
				if _, err := hclient.Predict(ctx, s.id, "tsl-8k", s.branches[i:j]); err != nil {
					t.Fatalf("http predict %s [%d:%d]: %v", s.id, i, j, err)
				}
			}
		}
	}
	phase := func(third int) {
		for _, s := range sessions {
			lo := third * len(s.branches) / 3
			hi := (third + 1) * len(s.branches) / 3
			send(s, lo, hi)
		}
	}

	phase(0)

	// Membership change 1: b3 joins mid-run. Rebalance synchronously so
	// the migration assertions observe the settled state; the first
	// transfer attempts fail by injection and are retried.
	if err := g.AddBackend(b3.backend()); err != nil {
		t.Fatal(err)
	}
	g.rebalance()
	afterJoin := g.Stats()
	if afterJoin.Migrations == 0 {
		t.Fatalf("join produced no live migration: %+v", afterJoin)
	}
	onJoiner := 0
	for _, s := range sessions {
		if g.LookupOwner(s.id) == "b3" {
			onJoiner++
		}
	}
	if onJoiner == 0 {
		t.Fatalf("no chaos session assigned to the joined backend")
	}

	phase(1)

	// Membership change 2: an original backend dies mid-run. It drains
	// first (llbpd's SIGTERM path — cursors and predictor state reach the
	// shared snapshot directory) but the gateway is not told; sessions
	// must reroute on the death verdict and warm-restore elsewhere. The
	// victim is whichever original member currently owns sessions, so the
	// kill always orphans at least one live stream.
	counts := map[string]int{}
	for _, s := range sessions {
		counts[g.LookupOwner(s.id)]++
	}
	victimName := ""
	for _, cand := range []string{"b1", "b2"} {
		if counts[cand] > 0 {
			victimName = cand
			break
		}
	}
	if victimName == "" {
		t.Fatalf("every session moved to the joiner; owner counts %v", counts)
	}
	map[string]*testBackend{"b1": b1, "b2": b2}[victimName].kill()

	phase(2)

	// Every session closes through its own frontend and must match the
	// unbroken local run exactly.
	for _, s := range sessions {
		var got serve.SessionStats
		if s.wireFront {
			pred, st, err := wclient.CloseSession(ctx, s.id)
			if err != nil {
				t.Fatalf("wire close %s: %v", s.id, err)
			}
			if pred != "tsl-8k" {
				t.Fatalf("close %s predictor %q", s.id, pred)
			}
			got = wireSessionStats(st)
		} else {
			fin, err := hclient.CloseSession(ctx, s.id)
			if err != nil {
				t.Fatalf("http close %s: %v", s.id, err)
			}
			got = fin.Stats
		}
		want := localRun(t, "tsl-8k", s.branches, instr)
		requireExact(t, s.id, got, want.Measured)
		if got.MPKI == 0 {
			t.Fatalf("%s: degenerate zero MPKI — workload too easy to detect divergence", s.id)
		}
	}

	// The run must actually have exercised the machinery it claims to:
	// injected faults fired, retries happened, sessions moved both ways.
	st := g.Stats()
	if st.Migrations == 0 {
		t.Fatalf("chaos run saw no live migration: %+v", st)
	}
	if st.ForwardErrors == 0 || st.ForwardRetries == 0 {
		t.Fatalf("injected forward faults never fired: %+v", st)
	}
	if fs := inj.Stats(FaultForward); fs.Errors == 0 {
		t.Fatalf("forward site injected nothing: %+v", fs)
	}
	if fs := inj.Stats(FaultTransfer); fs.Errors == 0 {
		t.Fatalf("transfer site injected nothing: %+v", fs)
	}
	// The killed backend's sessions left it one way or another: either a
	// live transfer beat the kill or a bare reroute + warm restore
	// followed it. Both count as "moved off the dead member".
	for _, s := range sessions {
		if owner := g.LookupOwner(s.id); owner == victimName {
			t.Fatalf("session %s still assigned to the killed backend %s", s.id, victimName)
		}
	}
}

// TestClusterChaosWireStreamPipelined drives the gateway's binary
// frontend with the pipelined wire.Stream client — depth > 1, retries
// armed — across a mid-stream graceful leave, proving the relayed
// duplicate/out-of-order verdicts compose with the client's recovery
// protocol, not just with lockstep request/response.
func TestClusterChaosWireStreamPipelined(t *testing.T) {
	dir := t.TempDir()
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	g := newGateway(t, fastCfg(b1.backend(), b2.backend()))

	addr := gatewayWireAddr(t, g)
	const instr = 45_000
	const batchSize = 512
	branches := workloadBranches(t, "kafka", instr)

	c := wire.NewClient(addr).WithRetry(serve.RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond})
	defer c.Close()
	s := c.Stream("pipeline-1", "tsl-8k", wire.StreamConfig{Window: 4})
	ctx := context.Background()
	nbatches := (len(branches) + batchSize - 1) / batchSize
	sent := 0
	for i := 0; i < len(branches); i += batchSize {
		j := i + batchSize
		if j > len(branches) {
			j = len(branches)
		}
		if err := s.Send(ctx, branches[i:j]); err != nil {
			t.Fatalf("stream send batch %d: %v", sent+1, err)
		}
		sent++
		if sent == nbatches/2 {
			// Mid-stream, with batches still in flight, the owner leaves
			// gracefully — the session migrates under the pipeline.
			if err := g.RemoveBackend("b1"); err != nil {
				t.Fatalf("leave: %v", err)
			}
		}
	}
	pred, st, err := s.Close(ctx)
	if err != nil {
		t.Fatalf("pipelined close: %v", err)
	}
	if pred != "tsl-8k" {
		t.Fatalf("predictor %q", pred)
	}
	want := localRun(t, "tsl-8k", branches, instr)
	got := stats.BranchStats{Instructions: st.Instructions, CondBranches: st.CondBranches,
		Mispredicts: st.Mispredicts, UncondCount: st.UncondCount, SecondLevelOK: st.SecondLevelOK}
	localBS := stats.BranchStats{Instructions: want.Measured.Instructions, CondBranches: want.Measured.CondBranches,
		Mispredicts: want.Measured.Mispredicts, UncondCount: want.Measured.UncondCount,
		SecondLevelOK: want.Measured.SecondLevelOK}
	if got != localBS {
		t.Fatalf("pipelined stream diverges:\ncluster %+v\nlocal   %+v", got, want.Measured)
	}
	if g.Stats().Migrations == 0 {
		t.Fatalf("leave under a pipelined stream produced no migration: %+v", g.Stats())
	}
}
