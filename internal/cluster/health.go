package cluster

import (
	"context"
	"time"
)

// prober is the gateway's liveness loop: every HealthEvery it pings each
// backend over the wire protocol. HealthFails consecutive failures
// (shared with the forward path's failure accounting) declare a backend
// dead — it leaves the ring and its sessions migrate. A dead backend
// that answers again is revived and rebalanced back in, unless it is
// leaving (draining backends still answer pings; see markAlive).
func (g *Gateway) prober() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-t.C:
		}
		g.mu.Lock()
		list := make([]*backendState, 0, len(g.backends))
		for _, bs := range g.backends {
			list = append(list, bs)
		}
		g.mu.Unlock()
		for _, bs := range list {
			ctx, cancel := context.WithTimeout(g.ctx, g.cfg.HealthEvery)
			err := bs.wc.Ping(ctx)
			cancel()
			switch {
			case err != nil:
				g.noteFailure(bs)
			case !bs.alive.Load():
				g.markAlive(bs)
			default:
				bs.fails.Store(0)
			}
		}
	}
}
