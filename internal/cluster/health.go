package cluster

import (
	"context"
	"time"
)

// prober is the gateway's liveness loop: every HealthEvery it pings each
// backend over the wire protocol. HealthFails consecutive failures
// (shared with the forward path's failure accounting) declare a backend
// dead — it leaves the ring and its sessions migrate. A dead backend
// that answers again is revived and rebalanced back in, unless it is
// leaving (draining backends still answer pings; see markAlive).
//
// Consecutive failures back off: each failed probe pushes the backend's
// next-probe deadline out exponentially (capped at 8× HealthEvery), so a
// backend that is down for minutes is probed every few ticks instead of
// burning a dial timeout on every single one. The first failure does not
// delay — the death verdict at HealthFails consecutive misses is reached
// on the ticker's native cadence — and one successful probe resets the
// backoff entirely.
func (g *Gateway) prober() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-t.C:
		}
		g.mu.Lock()
		list := make([]*backendState, 0, len(g.backends))
		for _, bs := range g.backends {
			list = append(list, bs)
		}
		g.mu.Unlock()
		now := time.Now()
		for _, bs := range list {
			if now.UnixNano() < bs.nextProbe.Load() {
				continue // still in backoff from earlier failures
			}
			ctx, cancel := context.WithTimeout(g.ctx, g.cfg.HealthEvery)
			err := bs.wc.Ping(ctx)
			cancel()
			switch {
			case err != nil:
				g.noteFailure(bs)
				backoff := probeBackoff(int(bs.fails.Load()), g.cfg.HealthEvery)
				bs.nextProbe.Store(now.Add(backoff).UnixNano())
			case !bs.alive.Load():
				bs.nextProbe.Store(0)
				g.markAlive(bs)
			default:
				bs.nextProbe.Store(0)
				bs.fails.Store(0)
			}
		}
	}
}

// probeBackoff is the extra wait imposed after the fails-th consecutive
// probe failure, on top of the prober's HealthEvery tick spacing:
// nothing for the first failure, then every doubling up to a cap of
// 8× HealthEvery.
func probeBackoff(fails int, every time.Duration) time.Duration {
	if fails <= 1 {
		return 0
	}
	shift := fails - 2
	if shift > 3 {
		shift = 3
	}
	return every << shift
}
