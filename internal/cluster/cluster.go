// Package cluster is the serving stack's horizontal tier: a stateless
// gateway (cmd/llbpgw) that spreads sessions across N llbpd backends and
// moves them between backends without losing bit-exactness.
//
// Placement is a weighted consistent-hash ring over session IDs
// (internal/hashutil.Ring): every gateway that knows the membership
// computes the same owner, no coordination or persisted state. The
// gateway speaks the binary wire protocol (internal/wire) downstream and
// exposes both the HTTP API and the wire protocol upstream, so existing
// clients work unchanged whether they point at one llbpd or at the
// cluster.
//
// Sessions are sticky because predictor state is per-workload learned
// history, not a stateless cache: when membership changes (backend join,
// graceful leave, death), affected sessions migrate as
// drain-checkpoint → transfer → warm-restore. The gateway quiesces a
// session (its per-session mutex covers both forwarding and migration,
// so a migration never races a batch), exports its checkpoint over the
// llbpd admin transfer API — the bit-identical snapshot layer, CRC and
// all — imports it on the new owner, and resumes the stream there. The
// exactly-once batch cursor rides the checkpoint, so in-flight resends
// across the move are answered as duplicates instead of double-applied.
// Corrupt or torn transfers are rejected by the import side's integrity
// checks and retried with a fresh export; a backend that died without a
// goodbye is routed around, with warm state following through the shared
// snapshot directory when one is configured.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"llbpx/internal/faults"
	"llbpx/internal/hashutil"
	"llbpx/internal/serve"
	"llbpx/internal/wire"
)

// Fault-injection site names the cluster tier fires (internal/faults).
const (
	// FaultForward fires before each downstream batch forward; an injected
	// error is handled exactly like a network partition between gateway
	// and backend — the attempt fails, the failure counts toward the
	// backend's death verdict, and the forward loop retries.
	FaultForward = "cluster.forward"
	// FaultTransfer fires before each migration attempt (error rules) and
	// wraps the exported checkpoint bytes (partial-write rules), so both a
	// partitioned transfer and a torn blob are injectable. A failed
	// attempt re-exports from scratch; the import side's CRC rejects torn
	// bytes before anything is installed.
	FaultTransfer = "cluster.transfer"
	// FaultReplicate fires on the primary before each checkpoint ship to
	// the standby (error rules) and tears the shipped bytes under
	// partial-write rules. The site lives in internal/replica; llbpd
	// serves it, so one -inject spec arms it on every backend.
	FaultReplicate = serve.FaultReplicate
	// FaultPromote fires before each standby-promotion attempt during
	// failover; an injected error is retried inside the promotion loop
	// (a promotion abandoned too early degrades to a cold reroute).
	FaultPromote = "cluster.promote"
)

// Backend identifies one llbpd instance the gateway can route to.
type Backend struct {
	// Name is the stable membership identity — it alone positions the
	// backend on the hash ring, so renaming a backend moves keys but
	// re-addressing it does not.
	Name string `json:"name"`
	// WireAddr is the llbpd binary-protocol listener (host:port); the
	// gateway forwards batches there.
	WireAddr string `json:"wire_addr"`
	// HTTPURL is the llbpd HTTP base URL; the gateway uses it for the
	// admin transfer API and cursor probes.
	HTTPURL string `json:"http_url"`
	// Weight scales the backend's share of the key space (default 1).
	Weight int `json:"weight,omitempty"`
}

// Config parameterizes a Gateway. The zero value plus at least one
// backend is usable; every field has a default applied by New.
type Config struct {
	// Backends is the initial membership.
	Backends []Backend
	// VNodes is the ring's points per weight unit (default 64).
	VNodes int
	// MaxBatch is the largest accepted batch, in branches (default 65536).
	MaxBatch int
	// ForwardAttempts bounds how many times one batch is (re)forwarded
	// across failures, reroutes, and retryable NACKs (default 8).
	ForwardAttempts int
	// ForwardTimeout bounds each individual downstream attempt
	// (default 10s).
	ForwardTimeout time.Duration
	// RetryBase / RetryMax shape the forward loop's exponential backoff
	// (defaults 25ms / 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HealthEvery is the liveness probe interval (default 2s; negative
	// disables the prober — tests drive health transitions directly).
	HealthEvery time.Duration
	// HealthFails is how many consecutive failures (probe or forward)
	// declare a backend dead (default 3).
	HealthFails int
	// TransferAttempts bounds migration retries per relocation; each
	// attempt re-exports the checkpoint (default 4).
	TransferAttempts int
	// Faults optionally injects deterministic faults at FaultForward and
	// FaultTransfer. Nil disables injection.
	Faults *faults.Injector
	// Replicate enables hot-standby session replication: each session's
	// primary ships incremental checkpoints to the next distinct backend
	// on the ring, and a death verdict promotes that standby instead of
	// cold-rerouting (see replicate.go).
	Replicate bool
	// ReplayTail bounds the per-session replay buffer of recently applied
	// batches the gateway retains for post-promotion catch-up (default
	// 64). It must be at least the primaries' ship cadence
	// (serve.Config.ReplicaEvery), or failover cannot bridge the
	// unshipped gap exactly.
	ReplayTail int
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 65536
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 8
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 2 * time.Second
	}
	if c.HealthFails <= 0 {
		c.HealthFails = 3
	}
	if c.TransferAttempts <= 0 {
		c.TransferAttempts = 4
	}
	if c.ReplayTail <= 0 {
		c.ReplayTail = 64
	}
	return c
}

// backendState is one backend's runtime: its clients and health verdict.
type backendState struct {
	b  Backend
	wc *wire.Client  // downstream wire client — deliberately unarmed: the forward loop is the single retry authority
	hc *serve.Client // admin transfer + cursor probes

	alive atomic.Bool
	// leaving marks a backend that announced drain (or was removed by the
	// operator): the prober must not resurrect it just because it still
	// answers pings while draining.
	leaving atomic.Bool
	fails   atomic.Int32 // consecutive failures toward the death verdict
	// nextProbe (unix nanos) gates the health prober: after consecutive
	// probe failures the backend is skipped until this deadline, backing
	// off exponentially so a dead backend is not hammered every tick.
	nextProbe atomic.Int64
}

// gwSession is the gateway's routing record for one session. mu is the
// session's quiesce point: it is held across a forward and across a
// migration, so the two can never interleave and a relocated session's
// checkpoint is always a consistent between-batches cut.
type gwSession struct {
	id string

	mu        sync.Mutex
	owner     string // backend name; "" until the first batch routes
	predictor string // learned from the first acknowledged batch
	// next is the next gateway-assigned batch number for upstream callers
	// that do not sequence their own batches (HTTP). 0 = unknown: probe
	// the owner's cursor before the next send.
	next uint64
	// last is the session's most recent downstream statistics, used to
	// absorb a lost close acknowledgement exactly like wire.Stream does.
	last    wire.WireStats
	touched bool // last is meaningful
	closed  bool

	// Replication state (Config.Replicate; see replicate.go). epoch is the
	// session's fence epoch: ships and transfers are stamped with it, and
	// each promotion bumps it, fencing off the previous primary's line of
	// history. replicaVersion is the ring version the standby assignment
	// was computed at (0 = unassigned); tail is the bounded replay buffer
	// of recently acknowledged batches.
	epoch          uint64
	standby        string
	replicaVersion uint64
	tail           []tailEntry
}

// Gateway routes sessions over the backend set. Create with New; it
// implements http.Handler (the HTTP frontend) and ServeWire (the binary
// frontend). Call Close to release everything.
type Gateway struct {
	cfg     Config
	metrics *gwMetrics
	mux     *http.ServeMux

	mu          sync.Mutex
	ring        *hashutil.Ring
	backends    map[string]*backendState
	sessions    map[string]*gwSession
	ringVersion uint64
	closed      bool

	// rebalanceMu serializes rebalance passes (membership changes can
	// pile up; each pass re-reads the current ring, so running them one
	// at a time is both correct and enough).
	rebalanceMu sync.Mutex

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[*gwConn]struct{}
}

// New builds a Gateway over the configured backends and starts its
// health prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:      cfg,
		ring:     hashutil.NewRing(cfg.VNodes),
		backends: make(map[string]*backendState),
		sessions: make(map[string]*gwSession),
		conns:    make(map[*gwConn]struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
	g.metrics = newGwMetrics(g)
	g.mux = g.buildMux()
	for _, b := range cfg.Backends {
		if err := g.AddBackend(b); err != nil {
			cancel()
			return nil, err
		}
	}
	if cfg.HealthEvery > 0 {
		g.wg.Add(1)
		go g.prober()
	}
	return g, nil
}

// AddBackend joins a backend to the membership (idempotent for a backend
// already present under the same name) and rebalances sessions onto it
// in the background.
func (g *Gateway) AddBackend(b Backend) error {
	if b.Name == "" || b.WireAddr == "" || b.HTTPURL == "" {
		return fmt.Errorf("cluster: backend needs name, wire_addr and http_url (got %+v)", b)
	}
	if b.Weight < 1 {
		b.Weight = 1
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("cluster: gateway closed")
	}
	if old := g.backends[b.Name]; old != nil && old.b == b && old.alive.Load() {
		g.mu.Unlock()
		return nil
	}
	bs := &backendState{b: b, wc: wire.NewClient(b.WireAddr), hc: serve.NewClient(b.HTTPURL, nil)}
	bs.alive.Store(true)
	if old := g.backends[b.Name]; old != nil {
		old.wc.Close()
	}
	g.backends[b.Name] = bs
	g.ring.Add(b.Name, b.Weight)
	g.ringVersion++
	g.mu.Unlock()
	g.spawnRebalance()
	return nil
}

// RemoveBackend gracefully retires a backend: it leaves the ring
// immediately and every session it owns is migrated away live before the
// call returns (the backend must still be up to donate its state; a dead
// backend needs no removal — the death verdict already rerouted around
// it).
func (g *Gateway) RemoveBackend(name string) error {
	g.mu.Lock()
	bs := g.backends[name]
	if bs == nil {
		g.mu.Unlock()
		return fmt.Errorf("cluster: no backend %q", name)
	}
	bs.leaving.Store(true)
	if g.ring.Contains(name) {
		g.ring.Remove(name)
		g.ringVersion++
	}
	g.mu.Unlock()
	g.rebalance()
	return nil
}

// backend returns the named backend's state, or nil.
func (g *Gateway) backend(name string) *backendState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backends[name]
}

// session returns the routing record for id, creating it when create is
// set.
func (g *Gateway) session(id string, create bool) *gwSession {
	g.mu.Lock()
	defer g.mu.Unlock()
	gs := g.sessions[id]
	if gs == nil && create {
		gs = &gwSession{id: id}
		g.sessions[id] = gs
	}
	return gs
}

// forget drops a closed session's routing record.
func (g *Gateway) forget(id string) {
	g.mu.Lock()
	delete(g.sessions, id)
	g.mu.Unlock()
}

// LookupOwner returns the backend name the ring currently assigns to
// key ("" when no backend is live). Exposed for placement diagnostics
// and movement assertions.
func (g *Gateway) LookupOwner(key string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring.Lookup(key)
}

// RingVersion increments on every membership change.
func (g *Gateway) RingVersion() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ringVersion
}

// noteFailure records one failed interaction with a backend; reaching
// HealthFails consecutive failures declares it dead.
func (g *Gateway) noteFailure(bs *backendState) {
	if int(bs.fails.Add(1)) >= g.cfg.HealthFails {
		g.markDead(bs)
	}
}

// markDead removes a backend from the ring and rebalances its sessions
// away. Idempotent per aliveness transition.
func (g *Gateway) markDead(bs *backendState) {
	if !bs.alive.CompareAndSwap(true, false) {
		return
	}
	g.mu.Lock()
	if g.ring.Contains(bs.b.Name) {
		g.ring.Remove(bs.b.Name)
		g.ringVersion++
	}
	g.mu.Unlock()
	g.spawnRebalance()
}

// markAlive revives a backend the prober reached again — unless it is
// leaving (a draining backend still answers pings; resurrection would
// flap the ring).
func (g *Gateway) markAlive(bs *backendState) {
	if bs.leaving.Load() {
		return
	}
	if !bs.alive.CompareAndSwap(false, true) {
		return
	}
	bs.fails.Store(0)
	g.mu.Lock()
	g.ring.Add(bs.b.Name, bs.b.Weight)
	g.ringVersion++
	g.mu.Unlock()
	g.spawnRebalance()
}

// spawnRebalance runs a rebalance pass in the background, tracked by the
// gateway's waitgroup so Close can wait it out.
func (g *Gateway) spawnRebalance() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		g.rebalance()
	}()
}

// rebalance walks every known session and relocates the ones whose ring
// owner changed. Sessions are visited one at a time under their own
// mutex, so each migration is a quiesced, consistent move while
// unaffected sessions keep streaming.
func (g *Gateway) rebalance() {
	g.rebalanceMu.Lock()
	defer g.rebalanceMu.Unlock()
	g.mu.Lock()
	list := make([]*gwSession, 0, len(g.sessions))
	for _, gs := range g.sessions {
		list = append(list, gs)
	}
	g.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	for _, gs := range list {
		select {
		case <-g.ctx.Done():
			return
		default:
		}
		gs.mu.Lock()
		if !gs.closed && gs.owner != "" {
			g.ownerLocked(g.ctx, gs)
		}
		gs.mu.Unlock()
	}
}

// Close tears the gateway down: the prober and rebalancers stop, wire
// frontend connections are closed, and downstream clients released.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	g.cancel()
	g.connMu.Lock()
	for c := range g.conns {
		c.die()
	}
	g.connMu.Unlock()
	g.wg.Wait()
	g.mu.Lock()
	for _, bs := range g.backends {
		bs.wc.Close()
	}
	g.mu.Unlock()
}

// BackendStatus is one backend's membership record in ClusterStats.
type BackendStatus struct {
	Backend
	Alive    bool  `json:"alive"`
	Leaving  bool  `json:"leaving,omitempty"`
	Fails    int32 `json:"fails,omitempty"`
	Sessions int   `json:"sessions"`
}

// ClusterStats is the gateway's /v1/stats shape. It is deliberately not
// the llbpd StatsSnapshot: the gateway has no predictor state, only
// routing state.
type ClusterStats struct {
	UptimeSec       float64         `json:"uptime_sec"`
	Backends        []BackendStatus `json:"backends"`
	SessionsKnown   int             `json:"sessions_known"`
	RingVersion     uint64          `json:"ring_version"`
	RoutedBatches   uint64          `json:"routed_batches"`
	ForwardErrors   uint64          `json:"forward_errors"`
	ForwardRetries  uint64          `json:"forward_retries"`
	Reroutes        uint64          `json:"reroutes"`
	CursorResyncs   uint64          `json:"cursor_resyncs"`
	Migrations      uint64          `json:"migrations"`
	MigrationErrors uint64          `json:"migration_errors"`
	WireConns       uint64          `json:"wire_conns"`
	Promotions      uint64          `json:"promotions"`
	PromotionErrors uint64          `json:"promotion_errors"`
	ReplicaSyncs    uint64          `json:"replica_syncs"`
	ReplayedBatches uint64          `json:"replayed_batches"`
}

// Stats assembles the gateway-wide snapshot.
func (g *Gateway) Stats() ClusterStats {
	g.mu.Lock()
	perOwner := make(map[string]int)
	for _, gs := range g.sessions {
		perOwner[gs.owner]++
	}
	backends := make([]BackendStatus, 0, len(g.backends))
	for _, bs := range g.backends {
		backends = append(backends, BackendStatus{
			Backend:  bs.b,
			Alive:    bs.alive.Load(),
			Leaving:  bs.leaving.Load(),
			Fails:    bs.fails.Load(),
			Sessions: perOwner[bs.b.Name],
		})
	}
	sessions := len(g.sessions)
	version := g.ringVersion
	g.mu.Unlock()
	sort.Slice(backends, func(i, j int) bool { return backends[i].Name < backends[j].Name })
	m := g.metrics
	return ClusterStats{
		UptimeSec:       time.Since(m.start).Seconds(),
		Backends:        backends,
		SessionsKnown:   sessions,
		RingVersion:     version,
		RoutedBatches:   m.routedBatches.Value(),
		ForwardErrors:   m.forwardErrors.Value(),
		ForwardRetries:  m.forwardRetries.Value(),
		Reroutes:        m.reroutes.Value(),
		CursorResyncs:   m.cursorResyncs.Value(),
		Migrations:      m.migrations.Value(),
		MigrationErrors: m.migrationErrors.Value(),
		WireConns:       m.conns.Value(),
		Promotions:      m.promotions.Value(),
		PromotionErrors: m.promotionErrors.Value(),
		ReplicaSyncs:    m.replicaSyncs.Value(),
		ReplayedBatches: m.replayedBatches.Value(),
	}
}
