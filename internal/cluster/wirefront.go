package cluster

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"llbpx/internal/hashutil"
	"llbpx/internal/serve"
	"llbpx/internal/wire"
)

// Wire frontend -------------------------------------------------------------
//
// The gateway also speaks the binary protocol upstream, so wire clients
// (llbpload -proto binary, wire.Stream users) point at the cluster
// unchanged. Upstream batch numbers pass through verbatim — the client
// owns its cursor, and the downstream owner's duplicate/out-of-order
// verdicts relay back untouched, which is exactly what makes the
// client's pipelined recovery work across a mid-stream migration.
// Responses are relayed with AppendPredictOKRaw: the decoded downstream
// vectors are re-framed under the upstream sequence number without
// re-encoding the batch.

const (
	wireExecShards     = 4
	wireHandshakeWait  = 5 * time.Second
	wireFrontendWindow = 64 // queued jobs per conn before the reader blocks
)

// gwConn is one upstream wire connection: a reader decoding frames, a
// small executor pool sharded by session (preserving per-session order),
// and a write mutex serializing response frames.
type gwConn struct {
	g *Gateway
	c net.Conn

	wmu sync.Mutex

	execq  []chan *gwJob
	execWg sync.WaitGroup

	quit chan struct{}
	kill sync.Once
}

// gwJob is one upstream request frame being forwarded.
type gwJob struct {
	seq      uint64
	typ      byte
	session  string
	pred     string
	batchNum uint64
	batch    []byte // raw payload copy for Predict re-decode in the executor
}

// ServeWire accepts upstream binary-protocol connections on ln until the
// listener closes (or the gateway does).
func (g *Gateway) ServeWire(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-g.ctx.Done():
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		g.mu.Lock()
		closed := g.closed
		if !closed {
			g.wg.Add(1)
		}
		g.mu.Unlock()
		if closed {
			c.Close()
			return nil
		}
		g.metrics.conns.Inc()
		go func() {
			defer g.wg.Done()
			g.serveConn(c)
		}()
	}
}

func (g *Gateway) serveConn(c net.Conn) {
	defer c.Close()
	if err := wire.AcceptHandshake(c, wireHandshakeWait); err != nil {
		return
	}
	wc := &gwConn{g: g, c: c, quit: make(chan struct{})}
	wc.execq = make([]chan *gwJob, wireExecShards)
	for i := range wc.execq {
		wc.execq[i] = make(chan *gwJob, wireFrontendWindow)
		wc.execWg.Add(1)
		go wc.executor(wc.execq[i])
	}
	g.connMu.Lock()
	g.conns[wc] = struct{}{}
	g.connMu.Unlock()

	wc.readLoop()

	for _, q := range wc.execq {
		close(q)
	}
	wc.execWg.Wait()
	g.connMu.Lock()
	delete(g.conns, wc)
	g.connMu.Unlock()
}

// die tears the connection down (gateway close): the blocked reader and
// any in-flight writes fail fast.
func (wc *gwConn) die() {
	wc.kill.Do(func() {
		close(wc.quit)
		wc.c.Close()
	})
}

// readLoop decodes upstream frames and dispatches them. Malformed
// streams kill the connection — resynchronizing a corrupt length-
// prefixed stream is not possible.
func (wc *gwConn) readLoop() {
	br := bufio.NewReaderSize(wc.c, 256<<10)
	var buf []byte
	for {
		body, nbuf, _, err := wire.ReadFrame(br, buf)
		if err != nil {
			wc.die()
			return
		}
		buf = nbuf
		typ, seq, payload, err := wire.ParseHeader(body)
		if err != nil {
			wc.die()
			return
		}
		switch typ {
		case wire.FramePing:
			wc.write(wire.AppendPong(nil, seq))
		case wire.FramePredict:
			var pr wire.Predict
			if err := wire.DecodePredict(payload, &pr, wc.g.cfg.MaxBatch); err != nil {
				wc.respondNack(seq, serve.CodeBadRequest, err.Error(), false, 0)
				continue
			}
			// Copy the payload: the executor re-decodes it after the read
			// buffer has moved on to the next frame.
			j := &gwJob{seq: seq, typ: typ, session: string(pr.Session),
				pred: string(pr.Predictor), batchNum: pr.BatchNum,
				batch: append([]byte(nil), payload...)}
			if !wc.dispatch(j) {
				return
			}
		case wire.FrameClose:
			var cl wire.Close
			if err := wire.DecodeClose(payload, &cl); err != nil {
				wc.respondNack(seq, serve.CodeBadRequest, err.Error(), false, 0)
				continue
			}
			j := &gwJob{seq: seq, typ: typ, session: string(cl.Session)}
			if !wc.dispatch(j) {
				return
			}
		default:
			wc.respondNack(seq, serve.CodeBadRequest, "unknown frame type", false, 0)
		}
	}
}

// dispatch hands a job to the session's executor shard, preserving
// per-session frame order.
func (wc *gwConn) dispatch(j *gwJob) bool {
	q := wc.execq[hashutil.FNV1a(j.session)%uint64(len(wc.execq))]
	select {
	case q <- j:
		return true
	case <-wc.quit:
		return false
	}
}

func (wc *gwConn) executor(q <-chan *gwJob) {
	defer wc.execWg.Done()
	for j := range q {
		select {
		case <-wc.quit:
			continue // drain without executing
		default:
		}
		switch j.typ {
		case wire.FramePredict:
			wc.execPredict(j)
		case wire.FrameClose:
			wc.execClose(j)
		}
	}
}

func (wc *gwConn) execPredict(j *gwJob) {
	g := wc.g
	var pr wire.Predict
	if err := wire.DecodePredict(j.batch, &pr, g.cfg.MaxBatch); err != nil {
		wc.respondNack(j.seq, serve.CodeBadRequest, err.Error(), false, 0)
		return
	}
	gs := g.session(j.session, true)
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		wc.respondNack(j.seq, serve.CodeSessionNotFound, "session is closed", false, 0)
		return
	}
	var ok wire.PredictOK
	if _, err := g.forward(g.ctx, gs, j.pred, j.batchNum, pr.Branches, &ok); err != nil {
		var ne *wire.NackError
		if errors.As(err, &ne) {
			wc.respondNack(j.seq, ne.Code, ne.Message, ne.Retryable, ne.RetryAfter)
			return
		}
		wc.respondNack(j.seq, serve.CodeInternal, err.Error(), false, 0)
		return
	}
	// Relay the downstream response under the upstream sequence number —
	// byte-identical content, no re-encode of the batch.
	wc.write(wire.AppendPredictOKRaw(nil, j.seq, ok.Flags, ok.Predictor, ok.N,
		ok.Cond, ok.Taken, ok.Correct, ok.Second, ok.Stats))
}

func (wc *gwConn) execClose(j *gwJob) {
	g := wc.g
	ctx, cancel := context.WithTimeout(g.ctx, g.cfg.ForwardTimeout)
	pred, st, err := g.closeSession(ctx, j.session)
	cancel()
	if err != nil {
		var ne *wire.NackError
		if errors.As(err, &ne) {
			wc.respondNack(j.seq, ne.Code, ne.Message, ne.Retryable, ne.RetryAfter)
			return
		}
		wc.respondNack(j.seq, serve.CodeInternal, err.Error(), false, 0)
		return
	}
	wc.write(wire.AppendCloseOK(nil, j.seq, pred, st))
}

func (wc *gwConn) respondNack(seq uint64, code, msg string, retryable bool, after time.Duration) {
	wc.write(wire.AppendNack(nil, seq, code, msg, retryable, uint64(after/time.Millisecond)))
}

// write emits one response frame as one Write under the conn's write
// lock, so concurrent executors never interleave frame bytes.
func (wc *gwConn) write(frame []byte) {
	wc.wmu.Lock()
	_, err := wc.c.Write(frame)
	wc.wmu.Unlock()
	if err != nil {
		wc.die()
	}
}
