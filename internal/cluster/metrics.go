package cluster

import (
	"fmt"
	"sort"
	"time"

	"llbpx/internal/obs"
)

// latencyBuckets mirrors internal/serve: power-of-two microsecond
// buckets, 28 of which cover ~134 s.
const latencyBuckets = 28

// gwMetrics is the gateway's observability surface: the llbpgw_* metric
// families, on the same internal/obs machinery (and with the same golden
// exposition lock discipline) as llbpd's.
type gwMetrics struct {
	start time.Time
	reg   *obs.Registry

	routedBatches   *obs.Counter // batches forwarded and acknowledged
	forwardErrors   *obs.Counter // failed forward attempts (injected, transport, NACK)
	forwardRetries  *obs.Counter // forward re-attempts performed
	reroutes        *obs.Counter // sessions rerouted bare (dead source, failed transfer)
	cursorResyncs   *obs.Counter // gateway-assigned cursors resynchronized from owner stats
	migrations      *obs.Counter // live session transfers completed
	migrationErrors *obs.Counter // relocations whose transfer attempts were exhausted
	conns           *obs.Counter // wire frontend connections accepted
	promotions      *obs.Counter // standby promotions completed (warm failovers)
	promotionErrors *obs.Counter // promotions abandoned to a bare reroute
	replicaSyncs    *obs.Counter // standby placements (re)asserted on primaries
	replayedBatches *obs.Counter // tail batches replayed into promoted standbys

	migrationDur *obs.Histogram // completed migration duration, µs
}

func newGwMetrics(g *Gateway) *gwMetrics {
	reg := obs.NewRegistry("llbpgw_")
	m := &gwMetrics{
		start: time.Now(),
		reg:   reg,

		routedBatches:   reg.Counter("routed_batches_total"),
		forwardErrors:   reg.Counter("forward_errors_total"),
		forwardRetries:  reg.Counter("forward_retries_total"),
		reroutes:        reg.Counter("reroutes_total"),
		cursorResyncs:   reg.Counter("cursor_resyncs_total"),
		migrations:      reg.Counter("migrations_total"),
		migrationErrors: reg.Counter("migration_errors_total"),
		conns:           reg.Counter("wire_conns_total"),
		promotions:      reg.Counter("promotions_total"),
		promotionErrors: reg.Counter("promotion_errors_total"),
		replicaSyncs:    reg.Counter("replica_syncs_total"),
		replayedBatches: reg.Counter("replica_replayed_batches_total"),

		migrationDur: reg.Histogram("migration_duration_us", latencyBuckets),
	}
	reg.GaugeFunc("uptime_seconds", func() float64 { return time.Since(m.start).Seconds() })
	reg.GaugeFunc("sessions_known", func() float64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return float64(len(g.sessions))
	})
	reg.GaugeFunc("backends_live", func() float64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		n := 0
		for _, bs := range g.backends {
			if bs.alive.Load() {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("ring_version", func() float64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return float64(g.ringVersion)
	})
	reg.OnCollect(func(w *obs.ExpoWriter) { m.collect(w, g) })
	return m
}

// collect contributes the per-backend labeled gauges: health and owned
// session counts.
func (m *gwMetrics) collect(w *obs.ExpoWriter, g *Gateway) {
	g.mu.Lock()
	perOwner := make(map[string]int)
	for _, gs := range g.sessions {
		perOwner[gs.owner]++
	}
	type row struct {
		name  string
		alive bool
		owned int
	}
	rows := make([]row, 0, len(g.backends))
	for name, bs := range g.backends {
		rows = append(rows, row{name: name, alive: bs.alive.Load(), owned: perOwner[name]})
	}
	g.mu.Unlock()
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	w.Family("backend_up", "gauge")
	for _, r := range rows {
		up := 0.0
		if r.alive {
			up = 1
		}
		w.Labeled("backend_up", backendLabel(r.name), up)
	}
	w.Family("backend_sessions", "gauge")
	for _, r := range rows {
		w.LabeledInt("backend_sessions", backendLabel(r.name), uint64(r.owned))
	}
}

func backendLabel(name string) string { return fmt.Sprintf("backend=%q", name) }
