package history

import (
	"testing"
	"testing/quick"

	"llbpx/internal/hashutil"
)

func TestGlobalPushAndBit(t *testing.T) {
	g := NewGlobal(64)
	seq := []uint8{1, 0, 1, 1, 0, 0, 1}
	for _, b := range seq {
		g.Push(b)
	}
	for age := 0; age < len(seq); age++ {
		want := seq[len(seq)-1-age]
		if got := g.Bit(age); got != want {
			t.Fatalf("Bit(%d) = %d, want %d", age, got, want)
		}
	}
}

func TestGlobalCapacityRounding(t *testing.T) {
	g := NewGlobal(3000)
	if g.Capacity() < 3001 {
		t.Fatalf("capacity %d too small for requested 3000", g.Capacity())
	}
	if c := g.Capacity(); c&(c-1) != 0 {
		t.Fatalf("capacity %d is not a power of two", c)
	}
}

func TestGlobalWraparound(t *testing.T) {
	g := NewGlobal(8)
	// Push more bits than capacity; the most recent must still be right.
	for i := 0; i < 100; i++ {
		g.Push(uint8(i % 2))
	}
	if g.Bit(0) != 1 || g.Bit(1) != 0 {
		t.Fatal("wraparound lost the most recent bits")
	}
}

// naiveFold recomputes the folded compression from scratch: XOR of the
// window bits placed at rotating positions, mirroring the incremental
// update's fixed point.
func foldedMatchesNaive(bits []uint8, origLen int, compLen uint) bool {
	g := NewGlobal(origLen + 8)
	f := NewFolded(origLen, compLen)
	for _, b := range bits {
		g.Push(b)
		f.Update(g)
	}
	// Reconstruct: replay the same pushes through a fresh Folded; equal by
	// construction, so instead verify the invariant that the comp only
	// depends on the last origLen bits: replaying only those bits (padded
	// with the same prefix zeros the register started from) must agree
	// once the window is full.
	if len(bits) < origLen+int(compLen)+4 {
		return true // not enough history for the invariant to bind
	}
	g2 := NewGlobal(origLen + 8)
	f2 := NewFolded(origLen, compLen)
	// Replay a prefix-free reconstruction: push enough zeros to flush the
	// register (a zero window folds to zero), then the last origLen bits.
	for i := 0; i < origLen+int(compLen)+1; i++ {
		g2.Push(0)
		f2.Update(g2)
	}
	if f2.Value() != 0 {
		return false // flushing with zeros must zero the compression
	}
	start := len(bits) - origLen
	for _, b := range bits[start:] {
		g2.Push(b)
		f2.Update(g2)
	}
	return f.Value() == f2.Value()
}

func TestFoldedDependsOnlyOnWindow(t *testing.T) {
	prop := func(raw []byte, lenSel, compSel uint8) bool {
		origLen := 5 + int(lenSel%60)
		compLen := uint(4 + compSel%12)
		bits := make([]uint8, len(raw)+origLen+40)
		for i, b := range raw {
			bits[i] = b & 1
		}
		for i := len(raw); i < len(bits); i++ {
			bits[i] = uint8(i*7%3) & 1
		}
		return foldedMatchesNaive(bits, origLen, compLen)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldedWidth(t *testing.T) {
	g := NewGlobal(128)
	f := NewFolded(100, 11)
	r := hashutil.NewRand(1)
	for i := 0; i < 500; i++ {
		g.Push(uint8(r.Intn(2)))
		f.Update(g)
		if f.Value() >= 1<<11 {
			t.Fatalf("folded value %d exceeds 11 bits", f.Value())
		}
	}
}

func TestFoldedDistinguishesHistories(t *testing.T) {
	// Two different windows should (almost always) compress differently.
	run := func(seed uint64) uint64 {
		g := NewGlobal(64)
		f := NewFolded(40, 13)
		r := hashutil.NewRand(seed)
		for i := 0; i < 200; i++ {
			g.Push(uint8(r.Intn(2)))
			f.Update(g)
		}
		return f.Value()
	}
	if run(1) == run(2) {
		t.Fatal("distinct random histories folded to the same value (suspicious)")
	}
}

func TestFoldedPanicsOnBadWidth(t *testing.T) {
	for _, w := range []uint{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewFolded(10, %d) must panic", w)
				}
			}()
			NewFolded(10, w)
		}()
	}
}

func TestFoldedReset(t *testing.T) {
	g := NewGlobal(32)
	f := NewFolded(16, 8)
	for i := 0; i < 20; i++ {
		g.Push(1)
		f.Update(g)
	}
	f.Reset()
	if f.Value() != 0 {
		t.Fatal("Reset must clear the compression")
	}
}

func TestGlobalHashWindowSensitivity(t *testing.T) {
	g := NewGlobal(64)
	for i := 0; i < 40; i++ {
		g.Push(uint8(i % 2))
	}
	before := g.Hash(16, 20)
	g.Push(1)
	after := g.Hash(16, 20)
	if before == after {
		t.Fatal("Hash should change when a new bit enters the window")
	}
	if h := g.Hash(16, 20); h >= 1<<20 {
		t.Fatalf("Hash width violated: %d", h)
	}
}

func TestGlobalHashDeterministic(t *testing.T) {
	mk := func() uint64 {
		g := NewGlobal(64)
		for i := 0; i < 50; i++ {
			g.Push(uint8((i * 3) % 2))
		}
		return g.Hash(32, 24)
	}
	if mk() != mk() {
		t.Fatal("Hash must be deterministic")
	}
}

func TestPath(t *testing.T) {
	p := NewPath(8)
	for i := 0; i < 100; i++ {
		p.Push(uint64(i) << 2)
		if p.Value() >= 1<<8 {
			t.Fatalf("path value %d exceeds width", p.Value())
		}
	}
}

func TestPathPanicsOnBadWidth(t *testing.T) {
	for _, w := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewPath(%d) must panic", w)
				}
			}()
			NewPath(w)
		}()
	}
}
