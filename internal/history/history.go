// Package history implements the speculative global-history machinery
// shared by TAGE-style predictors: a long global direction history, the
// folded (cyclic-shift-register) compressions of it used to form table
// indices and tags in O(1) per branch, and a short path history of branch
// address bits.
package history

// Global is a circular buffer of direction bits. It comfortably holds the
// 3000-bit histories modern TAGE-SC-L configurations use; capacity is
// rounded up to a power of two.
type Global struct {
	bits []uint8
	ptr  int // index of the most recent bit
	mask int
}

// NewGlobal returns a history able to answer Bit(age) for age < capacity.
func NewGlobal(capacity int) *Global {
	n := 1
	for n < capacity+1 {
		n <<= 1
	}
	return &Global{bits: make([]uint8, n), mask: n - 1}
}

// Push records the newest direction bit (1 = taken).
func (g *Global) Push(bit uint8) {
	g.ptr = (g.ptr - 1) & g.mask
	g.bits[g.ptr] = bit & 1
}

// Bit returns the direction bit age positions in the past; age 0 is the
// most recently pushed bit.
func (g *Global) Bit(age int) uint8 {
	return g.bits[(g.ptr+age)&g.mask]
}

// Capacity returns the number of bits the history retains.
func (g *Global) Capacity() int { return len(g.bits) }

// Hash returns an XOR-fold of the most recent n history bits into width
// bits. It is O(n); predictors use Folded for per-branch work and reserve
// Hash for analysis and for the synthetic workloads' outcome functions.
func (g *Global) Hash(n int, width uint) uint64 {
	var h uint64
	var acc uint64
	shift := uint(0)
	for i := 0; i < n; i++ {
		acc |= uint64(g.Bit(i)) << shift
		shift++
		if shift == 64 {
			h = h*0x9e3779b97f4a7c15 + acc
			acc, shift = 0, 0
		}
	}
	if shift > 0 {
		h = h*0x9e3779b97f4a7c15 + acc
	}
	// Finalize (splitmix64-style) and fold.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	if width >= 64 {
		return h
	}
	var out uint64
	for h != 0 {
		out ^= h & ((1 << width) - 1)
		h >>= width
	}
	return out
}

// Folded maintains a compLen-bit cyclic compression of the most recent
// origLen global-history bits, updated in O(1) per branch (Michaud/Seznec
// folded history). Predictor tables keep one Folded per (table, use) pair.
type Folded struct {
	comp     uint64
	mask     uint64 // (1 << compLen) - 1, precomputed for the hot path
	compLen  uint
	origLen  int
	outPoint uint
}

// NewFolded returns a compression of origLen bits into compLen bits
// (1 <= compLen <= 32).
func NewFolded(origLen int, compLen uint) *Folded {
	f := MakeFolded(origLen, compLen)
	return &f
}

// MakeFolded is NewFolded by value, for predictors that keep their folded
// registers inline in flat arrays instead of behind per-register pointers.
func MakeFolded(origLen int, compLen uint) Folded {
	if compLen < 1 || compLen > 32 {
		panic("history: folded compression length out of range")
	}
	return Folded{
		mask:     1<<compLen - 1,
		compLen:  compLen,
		origLen:  origLen,
		outPoint: uint(origLen) % compLen,
	}
}

// Update advances the compression after g.Push recorded the newest bit.
// It must be called exactly once per pushed bit, after the push.
func (f *Folded) Update(g *Global) {
	f.UpdateBits(uint64(g.Bit(0)), uint64(g.Bit(f.origLen)))
}

// UpdateBits is Update with the two history bits (the newest bit and the
// bit aging out past origLen, each 0 or 1) supplied by the caller.
// Predictors updating many folds that share an origLen use it to fetch
// each bit from the global history once instead of once per fold.
func (f *Folded) UpdateBits(newest, oldest uint64) {
	c := (f.comp << 1) | newest
	c ^= oldest << f.outPoint
	c ^= c >> f.compLen
	f.comp = c & f.mask
}

// Value returns the current compLen-bit compression.
func (f *Folded) Value() uint64 { return f.comp }

// OrigLen returns the history length being compressed.
func (f *Folded) OrigLen() int { return f.origLen }

// Reset clears the compression (used when rebuilding state).
func (f *Folded) Reset() { f.comp = 0 }

// Path is a short history of branch-address bits, used to decorrelate
// index hashes of tables with identical history lengths.
type Path struct {
	value uint64
	width uint
}

// NewPath returns a path history retaining width bits (width <= 64).
func NewPath(width uint) *Path {
	if width == 0 || width > 64 {
		panic("history: path width out of range")
	}
	return &Path{width: width}
}

// Push shifts one address bit of pc into the path history.
func (p *Path) Push(pc uint64) {
	p.value = (p.value << 1) | ((pc >> 2) & 1)
	p.value &= (1 << p.width) - 1
}

// Value returns the current path bits.
func (p *Path) Value() uint64 { return p.value }
