package history

import "llbpx/internal/snapshot"

// SaveState writes the direction-bit ring (packed 8 bits per byte) and
// the ring pointer.
func (g *Global) SaveState(w *snapshot.Writer) {
	w.Marker("history.global")
	w.Int(g.ptr)
	packed := make([]byte, (len(g.bits)+7)/8)
	for i, b := range g.bits {
		packed[i/8] |= (b & 1) << (i % 8)
	}
	w.Bytes(packed)
}

// LoadState restores the ring; the receiver's capacity fixes the expected
// geometry, so a snapshot from a different configuration fails cleanly.
func (g *Global) LoadState(r *snapshot.Reader) {
	r.Marker("history.global")
	ptr := r.Int()
	wantLen := (len(g.bits) + 7) / 8
	packed := r.Bytes(wantLen)
	if r.Err() != nil {
		return
	}
	if ptr < 0 || ptr >= len(g.bits) || len(packed) != wantLen {
		r.Fail("global history geometry mismatch")
		return
	}
	g.ptr = ptr
	for i := range g.bits {
		g.bits[i] = (packed[i/8] >> (i % 8)) & 1
	}
}

// SaveState writes the current compressed value; the fold geometry is
// configuration, not state.
func (f *Folded) SaveState(w *snapshot.Writer) { w.U64(f.comp) }

// LoadState restores the compressed value, rejecting out-of-range bits.
func (f *Folded) LoadState(r *snapshot.Reader) {
	f.comp = r.U64Max(uint64(1)<<f.compLen - 1)
}

// SaveState writes the current path bits.
func (p *Path) SaveState(w *snapshot.Writer) { w.U64(p.value) }

// LoadState restores the path bits, rejecting values wider than the path.
func (p *Path) LoadState(r *snapshot.Reader) {
	max := uint64(1)<<p.width - 1
	if p.width >= 64 {
		max = ^uint64(0)
	}
	p.value = r.U64Max(max)
}
