package sim

import (
	"context"
	"errors"
	"testing"

	"llbpx/internal/core"
)

// countingPredictor is a deterministic stub: it predicts taken always and
// records calls.
type countingPredictor struct {
	predicts, updates, unconds int
	resets                     int
}

func (p *countingPredictor) Name() string { return "stub" }
func (p *countingPredictor) Predict(pc uint64) core.Prediction {
	p.predicts++
	return core.Prediction{Taken: true, FastTaken: pc%2 == 0, FromSecondLevel: true}
}
func (p *countingPredictor) Update(b core.Branch, pred core.Prediction) { p.updates++ }
func (p *countingPredictor) TrackUnconditional(b core.Branch)           { p.unconds++ }
func (p *countingPredictor) ResetStats()                                { p.resets++ }

func branches(n int) []core.Branch {
	out := make([]core.Branch, n)
	for i := range out {
		if i%4 == 3 {
			out[i] = core.Branch{PC: uint64(i), Kind: core.Call, Taken: true, InstrGap: 5}
		} else {
			out[i] = core.Branch{PC: uint64(i), Kind: core.CondDirect, Taken: i%2 == 0, InstrGap: 5}
		}
	}
	return out
}

func TestRunAccounting(t *testing.T) {
	bs := branches(400) // 2000 instructions total
	p := &countingPredictor{}
	res, err := Run(p, core.NewSliceSource(bs), Options{WarmupInstr: 500, MeasureInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictor != "stub" {
		t.Fatalf("Predictor = %q", res.Predictor)
	}
	// 500 warmup + 1000 measured = 1500 instructions = 300 branches.
	total := res.Warmup.Instructions + res.Measured.Instructions
	if total != 1500 {
		t.Fatalf("total instructions = %d, want 1500", total)
	}
	if res.Warmup.Instructions < 500 || res.Warmup.Instructions > 505 {
		t.Fatalf("warmup instructions = %d", res.Warmup.Instructions)
	}
	if p.predicts != p.updates {
		t.Fatal("every Predict must pair with an Update")
	}
	if p.unconds == 0 {
		t.Fatal("unconditional branches not delivered")
	}
	// Predictor predicts always-taken; every odd-index conditional is a
	// miss (taken == i%2==0).
	if res.Measured.Mispredicts == 0 {
		t.Fatal("expected mispredictions from the always-taken stub")
	}
	if res.Measured.SecondLevelOK == 0 {
		t.Fatal("second-level correct predictions not counted")
	}
	if res.Measured.Overrides == 0 {
		t.Fatal("override events not counted")
	}
	if p.resets != 1 {
		t.Fatalf("ResetStats called %d times, want 1 (warmup boundary)", p.resets)
	}
	if res.Truncated {
		t.Fatal("source covered the full budget; Truncated must be clear")
	}
}

func TestRunZeroWarmup(t *testing.T) {
	p := &countingPredictor{}
	res, err := Run(p, core.NewSliceSource(branches(100)), Options{MeasureInstr: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warmup.Instructions != 0 {
		t.Fatal("no warmup requested but warmup instructions recorded")
	}
	if res.Measured.Instructions < 300 {
		t.Fatalf("measured %d instructions", res.Measured.Instructions)
	}
	if p.resets != 1 {
		t.Fatal("stats must be reset at measurement start even without warmup")
	}
}

func TestRunShortSource(t *testing.T) {
	p := &countingPredictor{}
	res, err := Run(p, core.NewSliceSource(branches(10)), Options{WarmupInstr: 10, MeasureInstr: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.Instructions == 0 {
		t.Fatal("short source should still produce a measurement")
	}
	if res.Measured.Instructions > 50 {
		t.Fatal("measured more instructions than the source held")
	}
	if !res.Truncated {
		t.Fatal("source ended before the instruction budget; Truncated must be set")
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := Run(&countingPredictor{}, core.NewSliceSource(nil), Options{}); err == nil {
		t.Fatal("zero MeasureInstr must error")
	}
	if DefaultOptions().Validate() != nil {
		t.Fatal("default options must validate")
	}
}

func TestResultMPKI(t *testing.T) {
	r := Result{}
	r.Measured.Instructions = 1000
	r.Measured.Mispredicts = 3
	if r.MPKI() != 3 {
		t.Fatalf("MPKI = %v", r.MPKI())
	}
}

// sourceFunc adapts a closure to core.Source.
type sourceFunc func() (core.Branch, bool)

func (f sourceFunc) Next() (core.Branch, bool) { return f() }

// tallyObserver tallies observer callbacks, mirroring the simulator's own
// accounting so the test can check the two agree exactly.
type tallyObserver struct {
	warm, measured, miss uint64
}

func (o *tallyObserver) ObserveBranch(b core.Branch, pred core.Prediction, measuring bool) {
	if !measuring {
		o.warm++
		return
	}
	o.measured++
	if pred.Taken != b.Taken {
		o.miss++
	}
}

func TestObserverSeesEveryConditional(t *testing.T) {
	bs := branches(400)
	obs := &tallyObserver{}
	withRes, err := Run(&countingPredictor{}, core.NewSliceSource(bs),
		Options{WarmupInstr: 500, MeasureInstr: 1000, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.warm != withRes.Warmup.CondBranches {
		t.Fatalf("observer warm = %d, stats = %d", obs.warm, withRes.Warmup.CondBranches)
	}
	if obs.measured != withRes.Measured.CondBranches {
		t.Fatalf("observer measured = %d, stats = %d", obs.measured, withRes.Measured.CondBranches)
	}
	if obs.miss != withRes.Measured.Mispredicts {
		t.Fatalf("observer miss = %d, stats = %d", obs.miss, withRes.Measured.Mispredicts)
	}
	// The observer must not perturb results: an identical run without one
	// produces identical statistics.
	without, err := Run(&countingPredictor{}, core.NewSliceSource(bs),
		Options{WarmupInstr: 500, MeasureInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if without.Measured != withRes.Measured || without.Warmup != withRes.Warmup {
		t.Fatalf("observer changed results:\nwith:    %+v\nwithout: %+v", withRes, without)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, &countingPredictor{}, core.NewSliceSource(branches(400)),
		Options{MeasureInstr: 1000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Measured.Instructions != 0 {
		t.Fatalf("pre-cancelled context still simulated %d instructions", res.Measured.Instructions)
	}

	// Cancel mid-run: the source trips cancel partway through, and the
	// partial result must cover everything up to the last completed batch.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	n := 0
	src := sourceFunc(func() (core.Branch, bool) {
		n++
		if n == 2000 { // mid-stream, past the first internal batch
			cancel2()
		}
		return core.Branch{PC: uint64(n), Kind: core.CondDirect, Taken: true, InstrGap: 5}, true
	})
	res2, err2 := RunContext(ctx2, &countingPredictor{}, src, Options{MeasureInstr: 1_000_000_000})
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err2)
	}
	if res2.Measured.Instructions == 0 {
		t.Fatal("mid-run cancel must return the partial result")
	}
	if res2.Measured.Instructions >= 1_000_000_000 {
		t.Fatal("cancelled run claims to have finished")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	bs := branches(400)
	a, err := Run(&countingPredictor{}, core.NewSliceSource(bs), Options{WarmupInstr: 500, MeasureInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), &countingPredictor{}, core.NewSliceSource(bs),
		Options{WarmupInstr: 500, MeasureInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Measured != b.Measured || a.Warmup != b.Warmup || a.Truncated != b.Truncated {
		t.Fatalf("Run and RunContext diverge:\nRun:        %+v\nRunContext: %+v", a, b)
	}
}
