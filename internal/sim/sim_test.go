package sim

import (
	"testing"

	"llbpx/internal/core"
)

// countingPredictor is a deterministic stub: it predicts taken always and
// records calls.
type countingPredictor struct {
	predicts, updates, unconds int
	resets                     int
}

func (p *countingPredictor) Name() string { return "stub" }
func (p *countingPredictor) Predict(pc uint64) core.Prediction {
	p.predicts++
	return core.Prediction{Taken: true, FastTaken: pc%2 == 0, FromSecondLevel: true}
}
func (p *countingPredictor) Update(b core.Branch, pred core.Prediction) { p.updates++ }
func (p *countingPredictor) TrackUnconditional(b core.Branch)           { p.unconds++ }
func (p *countingPredictor) ResetStats()                                { p.resets++ }

func branches(n int) []core.Branch {
	out := make([]core.Branch, n)
	for i := range out {
		if i%4 == 3 {
			out[i] = core.Branch{PC: uint64(i), Kind: core.Call, Taken: true, InstrGap: 5}
		} else {
			out[i] = core.Branch{PC: uint64(i), Kind: core.CondDirect, Taken: i%2 == 0, InstrGap: 5}
		}
	}
	return out
}

func TestRunAccounting(t *testing.T) {
	bs := branches(400) // 2000 instructions total
	p := &countingPredictor{}
	res, err := Run(p, core.NewSliceSource(bs), Options{WarmupInstr: 500, MeasureInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictor != "stub" {
		t.Fatalf("Predictor = %q", res.Predictor)
	}
	// 500 warmup + 1000 measured = 1500 instructions = 300 branches.
	total := res.Warmup.Instructions + res.Measured.Instructions
	if total != 1500 {
		t.Fatalf("total instructions = %d, want 1500", total)
	}
	if res.Warmup.Instructions < 500 || res.Warmup.Instructions > 505 {
		t.Fatalf("warmup instructions = %d", res.Warmup.Instructions)
	}
	if p.predicts != p.updates {
		t.Fatal("every Predict must pair with an Update")
	}
	if p.unconds == 0 {
		t.Fatal("unconditional branches not delivered")
	}
	// Predictor predicts always-taken; every odd-index conditional is a
	// miss (taken == i%2==0).
	if res.Measured.Mispredicts == 0 {
		t.Fatal("expected mispredictions from the always-taken stub")
	}
	if res.Measured.SecondLevelOK == 0 {
		t.Fatal("second-level correct predictions not counted")
	}
	if res.Measured.Overrides == 0 {
		t.Fatal("override events not counted")
	}
	if p.resets != 1 {
		t.Fatalf("ResetStats called %d times, want 1 (warmup boundary)", p.resets)
	}
	if res.Truncated {
		t.Fatal("source covered the full budget; Truncated must be clear")
	}
}

func TestRunZeroWarmup(t *testing.T) {
	p := &countingPredictor{}
	res, err := Run(p, core.NewSliceSource(branches(100)), Options{MeasureInstr: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warmup.Instructions != 0 {
		t.Fatal("no warmup requested but warmup instructions recorded")
	}
	if res.Measured.Instructions < 300 {
		t.Fatalf("measured %d instructions", res.Measured.Instructions)
	}
	if p.resets != 1 {
		t.Fatal("stats must be reset at measurement start even without warmup")
	}
}

func TestRunShortSource(t *testing.T) {
	p := &countingPredictor{}
	res, err := Run(p, core.NewSliceSource(branches(10)), Options{WarmupInstr: 10, MeasureInstr: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.Instructions == 0 {
		t.Fatal("short source should still produce a measurement")
	}
	if res.Measured.Instructions > 50 {
		t.Fatal("measured more instructions than the source held")
	}
	if !res.Truncated {
		t.Fatal("source ended before the instruction budget; Truncated must be set")
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := Run(&countingPredictor{}, core.NewSliceSource(nil), Options{}); err == nil {
		t.Fatal("zero MeasureInstr must error")
	}
	if DefaultOptions().Validate() != nil {
		t.Fatal("default options must validate")
	}
}

func TestResultMPKI(t *testing.T) {
	r := Result{}
	r.Measured.Instructions = 1000
	r.Measured.Mispredicts = 3
	if r.MPKI() != 3 {
		t.Fatalf("MPKI = %v", r.MPKI())
	}
}
