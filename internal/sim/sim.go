// Package sim drives a predictor over a branch stream in retire order and
// collects the accuracy metrics the experiments report. It is the
// lightweight, branch-only simulator the paper uses for characterization
// and sensitivity studies (its gem5 runs are covered by
// internal/pipeline).
package sim

import (
	"context"
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/stats"
)

// Observer receives one callback per simulated conditional branch, after
// the predictor has both predicted and trained on it. It is the
// introspection hook behind misprediction attribution (internal/analyze):
// the simulator's accounting never depends on it, and a nil observer costs
// one pointer test per branch — the hot path stays allocation-free either
// way. Implementations must not retain b or pred past the call.
type Observer interface {
	// ObserveBranch sees the branch, the full prediction (with
	// provenance: provider history length, second-level origin, override
	// state), and whether the simulation is in the measured phase.
	ObserveBranch(b core.Branch, pred core.Prediction, measuring bool)
}

// Options bounds a simulation. Instruction counts follow the paper's
// warmup-then-measure protocol; both are expressed in retired
// instructions (not branches).
type Options struct {
	// WarmupInstr is the number of instructions simulated before
	// measurement starts; predictors train but mispredictions are not
	// counted against them.
	WarmupInstr uint64
	// MeasureInstr is the measured instruction count.
	MeasureInstr uint64
	// Observer, when non-nil, is invoked for every conditional branch.
	// It does not alter results; see the Observer docs for the hot-path
	// contract.
	Observer Observer
}

// DefaultOptions is a scaled-down version of the paper's 100M warmup +
// 200M measurement protocol that keeps the full experiment suite runnable
// in minutes.
func DefaultOptions() Options {
	return Options{WarmupInstr: 2_000_000, MeasureInstr: 4_000_000}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.MeasureInstr == 0 {
		return fmt.Errorf("sim: MeasureInstr must be positive")
	}
	return nil
}

// Result is one simulation's outcome.
type Result struct {
	// Predictor is the predictor's Name.
	Predictor string
	// Warmup and Measured are the per-phase branch statistics; MPKI and
	// reductions are always computed from Measured.
	Warmup   stats.BranchStats
	Measured stats.BranchStats
	// Extra is the predictor's internal counter snapshot at the end of the
	// run (nil for predictors without one).
	Extra map[string]float64
	// Truncated reports that the source was exhausted before
	// WarmupInstr+MeasureInstr retired instructions, so Measured covers a
	// shorter window than requested. Infinite sources (the synthetic
	// workloads) never truncate; finite traces may.
	Truncated bool
}

// MPKI returns the measured mispredictions per kilo-instruction.
func (r Result) MPKI() float64 { return r.Measured.MPKI() }

// simBatch is the number of branches buffered per core.RunBatch call. Big
// enough to amortize dispatch and loop overhead, small enough that the
// batch and prediction buffers stay cache-resident.
const simBatch = 512

// Run simulates p over src with the given options. The source should yield
// at least WarmupInstr+MeasureInstr instructions; infinite sources (the
// synthetic workloads) always do. A finite trace that ends early yields a
// shorter measurement, recorded via Result.Truncated.
//
// Branches are driven through core.RunBatch in chunks; the accounting is
// bit-identical to a per-branch loop. The only ordering constraint batching
// must respect is the warmup boundary: ResetStats has to run after the
// branch that crosses WarmupInstr and before the next one, so the chunk
// containing the boundary is split there.
func Run(p core.Predictor, src core.Source, opt Options) (Result, error) {
	return RunContext(context.Background(), p, src, opt)
}

// RunContext is Run with cancellation. The context is checked once per
// internal batch (every simBatch branches, ~simBatch*4 instructions), so
// cancellation latency is bounded and the per-branch hot path carries no
// extra cost. On cancellation the partial Result accumulated so far is
// returned — Extra populated, statistics consistent up to the last
// completed batch — together with ctx.Err(), so callers can report
// progress from an interrupted run.
func RunContext(ctx context.Context, p core.Predictor, src core.Source, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Predictor: p.Name()}
	var instr uint64
	measuring := opt.WarmupInstr == 0
	if measuring {
		resetStats(p)
	}
	limit := opt.WarmupInstr + opt.MeasureInstr
	obs := opt.Observer

	var batch [simBatch]core.Branch
	var preds [simBatch]core.Prediction
	for instr < limit && !res.Truncated {
		if err := ctx.Err(); err != nil {
			if sp, ok := p.(core.StatsProvider); ok {
				res.Extra = sp.Stats()
			}
			return res, err
		}
		// Fill the batch, fetching exactly the branches the per-branch loop
		// would have: one more whenever the running total is below limit.
		n := 0
		planned := instr
		for n < simBatch && planned < limit {
			b, ok := src.Next()
			if !ok {
				res.Truncated = true
				break
			}
			batch[n] = b
			planned += b.Instructions()
			n++
		}

		for off := 0; off < n; {
			// The sub-batch ends at the warmup boundary (inclusive of the
			// crossing branch, which still counts toward Warmup) or at the
			// end of the buffered batch.
			cut := n
			if !measuring {
				acc := instr
				for j := off; j < n; j++ {
					acc += batch[j].Instructions()
					if acc >= opt.WarmupInstr {
						cut = j + 1
						break
					}
				}
			}
			seg := batch[off:cut]
			segPreds := preds[off:cut]
			core.RunBatch(p, seg, segPreds)

			phase := &res.Warmup
			if measuring {
				phase = &res.Measured
			}
			for j, b := range seg {
				instr += b.Instructions()
				phase.Instructions += b.Instructions()
				if b.Kind.Conditional() {
					phase.CondBranches++
					pred := segPreds[j]
					if pred.Taken != b.Taken {
						phase.Mispredicts++
					} else if pred.FromSecondLevel {
						phase.SecondLevelOK++
					}
					if pred.Taken != pred.FastTaken {
						phase.Overrides++
					}
					if obs != nil {
						obs.ObserveBranch(b, pred, measuring)
					}
				} else {
					phase.UncondCount++
				}
			}
			if !measuring && instr >= opt.WarmupInstr {
				measuring = true
				resetStats(p)
			}
			off = cut
		}
	}
	if sp, ok := p.(core.StatsProvider); ok {
		res.Extra = sp.Stats()
	}
	return res, nil
}

func resetStats(p core.Predictor) {
	if r, ok := p.(core.Resetter); ok {
		r.ResetStats()
	}
}
