// Package faults is a small deterministic fault-injection framework for
// chaos-testing the serving stack in plain `go test` — no build tags, no
// environment variables. Code under test declares named sites ("where a
// fault could happen") and calls Fire/Delay/WrapWriter at them; a test or
// an operator arms an Injector with per-site Rules (error rate, added
// latency, silent partial writes) and passes it through configuration.
// A nil *Injector is always safe and free: every method on it is a no-op,
// so production builds carry the sites at the cost of a nil check.
//
// Determinism: every site draws from its own RNG stream, seeded by the
// injector seed mixed with the site name. Two injectors built with the
// same seed make identical decisions at a site given the same sequence of
// calls to that site, regardless of how calls to *other* sites interleave
// — which is what makes multi-goroutine chaos tests reproducible as long
// as each individual site is exercised deterministically.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"llbpx/internal/hashutil"
)

// ErrInjected is the error returned by Fire when an error rule trips and
// the rule does not override it. Callers can errors.Is against it to
// distinguish injected failures from organic ones in assertions.
var ErrInjected = errors.New("faults: injected error")

// Rule configures what an armed site injects. The zero Rule injects
// nothing (equivalent to clearing the site).
type Rule struct {
	// ErrRate is the probability in [0, 1] that Fire returns an error.
	ErrRate float64
	// Err replaces the returned error when set (default: ErrInjected,
	// wrapped with the site name).
	Err error
	// MaxErrors caps how many errors the site injects over its lifetime;
	// 0 means unlimited. A Rule{ErrRate: 1, MaxErrors: 1} deterministically
	// fails exactly the first call — the shape retry tests want.
	MaxErrors uint64
	// Latency is added to Fire and Delay calls that trip the latency rule.
	Latency time.Duration
	// LatencyRate is the probability of injecting Latency; 0 with a
	// non-zero Latency means every call (the common "slow site" case).
	LatencyRate float64
	// PartialAfter makes WrapWriter return a writer that silently
	// discards every byte past this many while still reporting success —
	// a torn write that defeats write-then-rename atomicity, which is
	// exactly the corruption a checksum + quarantine path must absorb.
	// 0 disables wrapping.
	PartialAfter int64
}

// SiteStats counts what an injector did at one site, for test assertions.
type SiteStats struct {
	// Calls counts Fire, Delay, and WrapWriter invocations.
	Calls uint64
	// Errors counts injected errors.
	Errors uint64
	// Delays counts injected latencies.
	Delays uint64
	// Truncated counts wrapped writers that actually dropped bytes.
	Truncated uint64
}

// site is one armed site's rule, RNG stream, and counters.
type site struct {
	rule  Rule
	rng   *rand.Rand
	stats SiteStats
}

// Injector holds the armed sites. The zero value is not usable; build
// with New. A nil *Injector is valid everywhere and injects nothing.
type Injector struct {
	seed  int64
	mu    sync.Mutex
	sites map[string]*site
}

// New returns an empty injector whose site RNG streams derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*site)}
}

// Set arms (or re-arms) a site with a rule. Setting the zero Rule keeps
// the site's counters but stops injecting.
func (in *Injector) Set(name string, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[name]
	if s == nil {
		s = &site{rng: rand.New(rand.NewSource(in.seed ^ int64(hashutil.FNV1a(name))))}
		in.sites[name] = s
	}
	s.rule = r
}

// Clear disarms a site (counters survive for inspection).
func (in *Injector) Clear(name string) {
	if in == nil {
		return
	}
	in.Set(name, Rule{})
}

// Stats returns a site's counters (zero for unknown sites).
func (in *Injector) Stats(name string) SiteStats {
	if in == nil {
		return SiteStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.sites[name]; s != nil {
		return s.stats
	}
	return SiteStats{}
}

// decide rolls the site's dice under the lock and returns what to inject;
// the actual sleep happens outside the lock so slow sites don't serialize
// the whole injector.
func (in *Injector) decide(name string, wantErr bool) (sleep time.Duration, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[name]
	if s == nil {
		return 0, nil
	}
	s.stats.Calls++
	r := s.rule
	if r.Latency > 0 && (r.LatencyRate <= 0 || s.rng.Float64() < r.LatencyRate) {
		sleep = r.Latency
		s.stats.Delays++
	}
	if wantErr && r.ErrRate > 0 && (r.MaxErrors == 0 || s.stats.Errors < r.MaxErrors) &&
		s.rng.Float64() < r.ErrRate {
		err = r.Err
		if err == nil {
			err = fmt.Errorf("%w at %q", ErrInjected, name)
		}
		s.stats.Errors++
	}
	return sleep, err
}

// Fire applies a site's latency rule, then its error rule, and returns
// the injected error (nil when nothing fired or the injector is nil).
func (in *Injector) Fire(name string) error {
	if in == nil {
		return nil
	}
	sleep, err := in.decide(name, true)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// Delay applies only a site's latency rule — for sites where an injected
// error has no meaningful propagation path but slowness does.
func (in *Injector) Delay(name string) {
	if in == nil {
		return
	}
	if sleep, _ := in.decide(name, false); sleep > 0 {
		time.Sleep(sleep)
	}
}

// WrapWriter returns w, or — when the site's rule has PartialAfter > 0 —
// a writer that silently stops forwarding bytes past that offset while
// reporting every write as fully successful. The caller's encode, sync,
// and rename all "succeed", landing a torn file on disk.
func (in *Injector) WrapWriter(name string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[name]
	if s == nil || s.rule.PartialAfter <= 0 {
		if s != nil {
			s.stats.Calls++
		}
		return w
	}
	s.stats.Calls++
	return &partialWriter{in: in, site: name, w: w, remaining: s.rule.PartialAfter}
}

// partialWriter forwards the first `remaining` bytes and swallows the
// rest, always reporting success.
type partialWriter struct {
	in        *Injector
	site      string
	w         io.Writer
	remaining int64
	truncated bool
}

func (pw *partialWriter) Write(p []byte) (int, error) {
	n := int64(len(p))
	if pw.remaining > 0 {
		k := min(pw.remaining, n)
		if _, err := pw.w.Write(p[:k]); err != nil {
			return 0, err
		}
		pw.remaining -= k
	}
	if pw.remaining <= 0 && n > 0 && !pw.truncated {
		// Count the torn write once, on the first dropped byte.
		pw.in.mu.Lock()
		if s := pw.in.sites[pw.site]; s != nil {
			s.stats.Truncated++
		}
		pw.in.mu.Unlock()
		pw.truncated = true
	}
	return len(p), nil
}

// ParseSpec builds an injector from a compact, flag-friendly spec:
//
//	site:key=value[,key=value...][;site:...]
//
// Keys: err (error rate), maxerr (error cap), lat (latency, Go duration),
// latrate (latency rate), partial (bytes before a torn write). Example:
//
//	serve.snapshot.save:err=0.1;serve.batch.exec:lat=50ms,latrate=0.5
//
// An empty spec returns (nil, nil): injection disabled.
func ParseSpec(spec string, seed int64) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	in := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, fields, ok := strings.Cut(entry, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: spec entry %q: want site:key=value,...", entry)
		}
		var r Rule
		for _, kv := range strings.Split(fields, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: spec entry %q: bad field %q", entry, kv)
			}
			var err error
			switch key {
			case "err":
				r.ErrRate, err = strconv.ParseFloat(val, 64)
			case "maxerr":
				r.MaxErrors, err = strconv.ParseUint(val, 10, 64)
			case "lat":
				r.Latency, err = time.ParseDuration(val)
			case "latrate":
				r.LatencyRate, err = strconv.ParseFloat(val, 64)
			case "partial":
				r.PartialAfter, err = strconv.ParseInt(val, 10, 64)
			default:
				return nil, fmt.Errorf("faults: spec entry %q: unknown key %q", entry, key)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: spec entry %q: field %q: %v", entry, kv, err)
			}
		}
		if r.ErrRate < 0 || r.ErrRate > 1 || r.LatencyRate < 0 || r.LatencyRate > 1 {
			return nil, fmt.Errorf("faults: spec entry %q: rates must lie in [0, 1]", entry)
		}
		in.Set(name, r)
	}
	return in, nil
}
