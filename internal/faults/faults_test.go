package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestNilInjectorIsFree: every method on a nil injector is a safe no-op —
// the property that lets production code call sites unconditionally.
func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if err := in.Fire("x"); err != nil {
		t.Fatalf("nil Fire returned %v", err)
	}
	in.Delay("x")
	in.Set("x", Rule{ErrRate: 1})
	in.Clear("x")
	var buf bytes.Buffer
	if w := in.WrapWriter("x", &buf); w != &buf {
		t.Fatal("nil WrapWriter must return the writer unchanged")
	}
	if st := in.Stats("x"); st != (SiteStats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
}

// TestDeterministicPerSite: same seed, same per-site call sequence, same
// decisions — independent of calls to other sites in between.
func TestDeterministicPerSite(t *testing.T) {
	run := func(interleave bool) []bool {
		in := New(42)
		in.Set("a", Rule{ErrRate: 0.5})
		in.Set("b", Rule{ErrRate: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			if interleave {
				in.Fire("b") // must not perturb site a's stream
			}
			out = append(out, in.Fire("a") != nil)
		}
		return out
	}
	plain, mixed := run(false), run(true)
	fired := 0
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("call %d: decision changed when another site interleaved", i)
		}
		if plain[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(plain) {
		t.Fatalf("rate 0.5 fired %d/%d times — rng not wired up", fired, len(plain))
	}
}

// TestMaxErrorsCap: ErrRate 1 + MaxErrors 2 fails exactly the first two
// calls, deterministically.
func TestMaxErrorsCap(t *testing.T) {
	in := New(7)
	in.Set("s", Rule{ErrRate: 1, MaxErrors: 2})
	for i := 0; i < 5; i++ {
		err := in.Fire("s")
		if want := i < 2; (err != nil) != want {
			t.Fatalf("call %d: err=%v, want firing=%v", i, err, want)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("injected error %v does not wrap ErrInjected", err)
		}
	}
	st := in.Stats("s")
	if st.Calls != 5 || st.Errors != 2 {
		t.Fatalf("stats = %+v, want 5 calls / 2 errors", st)
	}
}

// TestCustomError: a rule's Err overrides the default.
func TestCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	in := New(1)
	in.Set("s", Rule{ErrRate: 1, Err: sentinel})
	if err := in.Fire("s"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the custom error", err)
	}
}

// TestLatencyInjection: Latency with LatencyRate 0 fires on every call;
// Delay never injects errors.
func TestLatencyInjection(t *testing.T) {
	in := New(3)
	in.Set("slow", Rule{Latency: 5 * time.Millisecond, ErrRate: 1})
	start := time.Now()
	in.Delay("slow")
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("Delay slept %v, want >= 5ms", d)
	}
	st := in.Stats("slow")
	if st.Delays != 1 || st.Errors != 0 {
		t.Fatalf("stats after Delay = %+v (Delay must never inject errors)", st)
	}
	if err := in.Fire("slow"); err == nil {
		t.Fatal("Fire must still inject the error rule")
	}
}

// TestPartialWriterTornWrite: the wrapped writer forwards exactly
// PartialAfter bytes, swallows the rest, and reports every write as a
// success — the torn write the quarantine path must absorb.
func TestPartialWriterTornWrite(t *testing.T) {
	in := New(9)
	in.Set("disk", Rule{PartialAfter: 10})
	var buf bytes.Buffer
	w := in.WrapWriter("disk", &buf)
	for _, chunk := range [][]byte{make([]byte, 7), make([]byte, 7), make([]byte, 7)} {
		n, err := w.Write(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("torn write must report success, got n=%d err=%v", n, err)
		}
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying writer got %d bytes, want 10", buf.Len())
	}
	if st := in.Stats("disk"); st.Truncated != 1 {
		t.Fatalf("stats = %+v, want exactly one truncation", st)
	}

	// Without a PartialAfter rule the original writer comes back.
	in.Set("disk", Rule{})
	if got := in.WrapWriter("disk", &buf); got != &buf {
		t.Fatal("disarmed site must return the writer unchanged")
	}
}

// TestParseSpec round-trips the flag syntax.
func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("a.save:err=0.25,maxerr=3;b.exec:lat=50ms,latrate=0.5;c.disk:partial=128", 11)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 200; i++ {
		if in.Fire("a.save") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("a.save fired %d errors, want maxerr cap of 3", fired)
	}
	var buf bytes.Buffer
	if w := in.WrapWriter("c.disk", &buf); w == &buf {
		t.Fatal("c.disk must wrap the writer")
	}

	if in, err := ParseSpec("   ", 0); in != nil || err != nil {
		t.Fatalf("blank spec: (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{"noclue", "s:err=2", "s:wat=1", "s:err"} {
		if _, err := ParseSpec(bad, 0); err == nil {
			t.Fatalf("spec %q must fail to parse", bad)
		}
	}
}
