package patternpool

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestMain is the package's goleak-style final-stack assertion: after
// the concurrency bar has finished, no goroutine running this
// repository's code may still exist. The pool spawns no goroutines of
// its own, so anything left with an "llbpx/" frame is a test worker the
// synchronization failed to join.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := awaitNoLeaks(3 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutine(s) still running llbpx code after all tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// awaitNoLeaks polls for leaked goroutines until the deadline, giving
// just-finished tests a grace period to wind their goroutines down.
func awaitNoLeaks(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		leaked := leakedGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// leakedGoroutines returns the stacks of goroutines that are executing
// (or were created by) this repository's code, excluding the caller.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "llbpx/") {
			continue
		}
		if strings.Contains(g, "leakedGoroutines") {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}
