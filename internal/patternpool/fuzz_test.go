package patternpool

import (
	"bytes"
	"testing"
)

// FuzzNamespaceKey locks the (tenant, cid) keying path: the canonical
// encoding must round-trip, be injective (no two distinct keys share an
// encoding — the field boundary cannot be smuggled), and the
// allocation-free Hash must agree with hashing the materialized
// encoding byte for byte.
func FuzzNamespaceKey(f *testing.F) {
	f.Add("", "", "", "")
	f.Add("acme", "acme/session-1", "acme", "acme/session-2")
	f.Add("a", "bc", "ab", "c")
	f.Add("t\x00x", "y", "t", "\x00xy")
	f.Fuzz(func(t *testing.T, tenant1, cid1, tenant2, cid2 string) {
		k1 := Key{Tenant: tenant1, CID: cid1}
		k2 := Key{Tenant: tenant2, CID: cid2}

		enc1 := AppendEncode(nil, k1)
		dec, ok := DecodeKey(enc1)
		if !ok || dec != k1 {
			t.Fatalf("round trip failed: %+v -> %x -> %+v (ok=%v)", k1, enc1, dec, ok)
		}

		// Injectivity: distinct keys must encode (and hash the prefix
		// structure) differently.
		enc2 := AppendEncode(nil, k2)
		if k1 != k2 && bytes.Equal(enc1, enc2) {
			t.Fatalf("distinct keys %+v and %+v share encoding %x", k1, k2, enc1)
		}

		// Hash must equal FNV-1a over the materialized encoding.
		h := uint64(fnvOffset)
		for _, b := range enc1 {
			h = (h ^ uint64(b)) * fnvPrime
		}
		if got := k1.Hash(); got != h {
			t.Fatalf("Hash() = %#x, want %#x (FNV-1a of encoding)", got, h)
		}

		// Trailing garbage and truncation must be rejected.
		if _, ok := DecodeKey(append(enc1, 0)); ok {
			t.Fatal("trailing byte accepted")
		}
		if len(enc1) > 0 {
			if dec, ok := DecodeKey(enc1[:len(enc1)-1]); ok && dec == k1 {
				t.Fatal("truncated encoding decoded to the original key")
			}
		}
	})
}
