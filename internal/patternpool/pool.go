// Package patternpool is the process-wide, memory-budgeted backing store
// for last-level pattern state. The paper's thesis is that the last-level
// pattern store is one large shared structure exploiting context
// locality; this package applies it across serving sessions: every live
// session attaches a namespace keyed by (tenant, cid) whose storage
// draws on a shared byte budget, idle sessions are frozen into compact
// deduplicated blobs, and the slab arena recycles directory storage
// between sessions so resident memory is bounded by the budget rather
// than by the number of sessions ever seen.
//
// Bit-exactness contract: a live namespace's pattern state is always a
// private view — recycled slabs are fully re-initialized before reuse,
// and cross-session sharing happens only between frozen (immutable)
// blobs of sessions that declared the same workload fingerprint. Thawing
// copies the blob back out, so per-session prediction streams are
// bit-identical to a private store regardless of budget pressure.
package patternpool

import (
	"sync"
	"sync/atomic"
)

// Key identifies one namespace: the tenant (quota/metrics scope) and the
// session/context ID within it.
type Key struct {
	Tenant string
	CID    string
}

// Config shapes a Pool.
type Config struct {
	// Budget is the global byte budget across attached namespaces, the
	// frozen-blob cache, and the slab arena. <= 0 means unlimited.
	Budget int64
	// Sharing enables content deduplication of frozen blobs between
	// namespaces that declared the same non-empty workload fingerprint.
	Sharing bool
	// Shards is the namespace-map shard count (rounded up to a power of
	// two; defaults to 8).
	Shards int
	// OnFrozenEvict, when set, observes every frozen-blob eviction in
	// eviction order (tests use it to lock determinism). Called without
	// pool locks held; must not re-enter the pool.
	OnFrozenEvict func(Key)
}

type nsShard struct {
	mu sync.RWMutex
	m  map[Key]*Namespace
}

type slab struct {
	v     any
	bytes int64
}

type bodyEntry struct {
	data []byte
	refs int
}

type frozenEntry struct {
	key     Key
	header  []byte
	bodyKey string
	lastUse uint64
}

// Counters is a snapshot of the pool's monotonic event counters.
type Counters struct {
	Attaches        uint64
	Detaches        uint64
	Freezes         uint64
	Thaws           uint64
	SharedRestores  uint64 // thaws whose body bytes were shared with another namespace
	DedupHits       uint64 // freezes answered by an existing identical body
	FrozenEvictions uint64 // frozen blobs discarded by budget pressure
}

// Pool is the shared store. All methods are safe for concurrent use; the
// Charge/Uncharge/slab paths namespaces use during prediction are
// lock-free on the byte accounting and take only short arena locks at
// session materialize/release boundaries (never per branch).
type Pool struct {
	cfg      Config
	shardCnt int

	clock   atomic.Uint64 // logical time: all LRU/eviction order derives from this, never wall-clock
	provSeq atomic.Uint64

	attached   atomic.Int64
	arenaBytes atomic.Int64
	frozBytes  atomic.Int64
	nsCount    atomic.Int64

	attaches   atomic.Uint64
	detaches   atomic.Uint64
	freezes    atomic.Uint64
	thaws      atomic.Uint64
	sharedRest atomic.Uint64
	dedupHits  atomic.Uint64
	frozEvicts atomic.Uint64

	shards []nsShard

	tenantMu sync.Mutex
	tenants  map[string]*atomic.Int64

	arenaMu  sync.Mutex
	arena    map[uint64][]slab
	arenaCap int64

	frozenMu sync.Mutex
	frozen   map[Key]*frozenEntry
	bodies   map[string]*bodyEntry
}

// New builds a pool for cfg.
func New(cfg Config) *Pool {
	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	shardCnt := 1
	for shardCnt < n {
		shardCnt *= 2
	}
	p := &Pool{
		cfg:      cfg,
		shardCnt: shardCnt,
		shards:   make([]nsShard, shardCnt),
		tenants:  map[string]*atomic.Int64{},
		arena:    map[uint64][]slab{},
		frozen:   map[Key]*frozenEntry{},
		bodies:   map[string]*bodyEntry{},
	}
	for i := range p.shards {
		p.shards[i].m = map[Key]*Namespace{}
	}
	p.arenaCap = 64 << 20
	if cfg.Budget > 0 {
		p.arenaCap = cfg.Budget / 4
	}
	return p
}

func (p *Pool) shard(h uint64) *nsShard {
	return &p.shards[h&uint64(p.shardCnt-1)]
}

func (p *Pool) tenantGauge(tenant string) *atomic.Int64 {
	p.tenantMu.Lock()
	g := p.tenants[tenant]
	if g == nil {
		g = new(atomic.Int64)
		p.tenants[tenant] = g
	}
	p.tenantMu.Unlock()
	return g
}

// Attach creates (or replaces) the namespace for k. The returned
// namespace is the handle predictors charge their storage against.
func (p *Pool) Attach(k Key, fingerprint string) *Namespace {
	ns := &Namespace{
		pool:   p,
		key:    k,
		hash:   k.Hash(),
		prov:   p.provSeq.Add(1),
		tenant: p.tenantGauge(k.Tenant),
	}
	ns.fp.Store(fingerprint)
	sh := p.shard(ns.hash)
	sh.mu.Lock()
	prev := sh.m[k]
	sh.m[k] = ns
	sh.mu.Unlock()
	if prev != nil {
		p.dropAccounting(prev)
	}
	p.nsCount.Add(1)
	p.attaches.Add(1)
	return ns
}

// Lookup returns the live namespace for k, or nil.
func (p *Pool) Lookup(k Key) *Namespace {
	sh := p.shard(k.Hash())
	sh.mu.RLock()
	ns := sh.m[k]
	sh.mu.RUnlock()
	return ns
}

// Detach removes ns from the pool and drops any bytes still charged to
// it. Callers normally release the predictor's storage (returning slabs
// to the arena) first; Detach is the accounting backstop either way.
func (p *Pool) Detach(ns *Namespace) {
	if ns == nil || !ns.detached.CompareAndSwap(false, true) {
		return
	}
	sh := p.shard(ns.hash)
	sh.mu.Lock()
	if sh.m[ns.key] == ns {
		delete(sh.m, ns.key)
	}
	sh.mu.Unlock()
	p.dropAccounting(ns)
	p.nsCount.Add(-1)
	p.detaches.Add(1)
}

func (p *Pool) dropAccounting(ns *Namespace) {
	if b := ns.bytes.Swap(0); b != 0 {
		p.attached.Add(-b)
		ns.tenant.Add(-b)
	}
}

// getSlab pops a recycled slab of the given class, if any.
func (p *Pool) getSlab(class uint64) (any, bool) {
	p.arenaMu.Lock()
	list := p.arena[class]
	if len(list) == 0 {
		p.arenaMu.Unlock()
		return nil, false
	}
	s := list[len(list)-1]
	p.arena[class] = list[:len(list)-1]
	p.arenaBytes.Add(-s.bytes)
	p.arenaMu.Unlock()
	return s.v, true
}

// putSlab retains a released slab for reuse unless retention would
// overrun the arena cap or the global budget (then it is dropped for GC).
func (p *Pool) putSlab(class uint64, v any, bytes int64) {
	if bytes <= 0 {
		return
	}
	if p.arenaBytes.Load()+bytes > p.arenaCap {
		return
	}
	if p.cfg.Budget > 0 && p.TotalBytes()+bytes > p.cfg.Budget {
		return
	}
	p.arenaMu.Lock()
	p.arena[class] = append(p.arena[class], slab{v: v, bytes: bytes})
	p.arenaBytes.Add(bytes)
	p.arenaMu.Unlock()
}

// bodyKeyFor scopes dedup: bodies are shared only between namespaces
// declaring the same non-empty fingerprint (and only when sharing is
// on); everything else gets a per-namespace body that can never match.
func (p *Pool) bodyKeyFor(k Key, fingerprint string, body []byte) string {
	if p.cfg.Sharing && fingerprint != "" {
		sum := bodySum(body)
		return "fp\x00" + fingerprint + "\x00" + string(sum[:])
	}
	return "ns\x00" + string(AppendEncode(nil, k))
}

// Freeze stores an immutable (header, body) blob for k, replacing any
// previous blob, then trims the frozen cache back under budget. The
// caller must not mutate header/body afterwards.
func (p *Pool) Freeze(k Key, fingerprint string, header, body []byte) {
	bk := p.bodyKeyFor(k, fingerprint, body)
	var evicted []Key
	p.frozenMu.Lock()
	if old := p.frozen[k]; old != nil {
		p.releaseFrozenLocked(old)
	}
	be := p.bodies[bk]
	if be != nil && p.cfg.Sharing {
		be.refs++
		p.dedupHits.Add(1)
	} else {
		be = &bodyEntry{data: body, refs: 1}
		p.bodies[bk] = be
		p.frozBytes.Add(int64(len(body)))
	}
	p.frozen[k] = &frozenEntry{key: k, header: header, bodyKey: bk, lastUse: p.clock.Add(1)}
	p.frozBytes.Add(int64(len(header)))
	p.freezes.Add(1)
	evicted = p.reclaimFrozenLocked()
	p.frozenMu.Unlock()
	p.notifyEvicted(evicted)
}

// Thaw removes and returns the frozen blob for k. ok is false when no
// blob is cached (evicted or never frozen).
func (p *Pool) Thaw(k Key) (header, body []byte, ok bool) {
	p.frozenMu.Lock()
	e := p.frozen[k]
	if e == nil {
		p.frozenMu.Unlock()
		return nil, nil, false
	}
	be := p.bodies[e.bodyKey]
	body = be.data
	if be.refs > 1 {
		p.sharedRest.Add(1)
	}
	p.releaseFrozenLocked(e)
	p.thaws.Add(1)
	p.frozenMu.Unlock()
	return e.header, body, true
}

// Forget drops any frozen blob for k without restoring it (session
// closed for good).
func (p *Pool) Forget(k Key) {
	p.frozenMu.Lock()
	if e := p.frozen[k]; e != nil {
		p.releaseFrozenLocked(e)
	}
	p.frozenMu.Unlock()
}

// releaseFrozenLocked unlinks e and unrefs its body. Caller holds
// frozenMu.
func (p *Pool) releaseFrozenLocked(e *frozenEntry) {
	delete(p.frozen, e.key)
	p.frozBytes.Add(-int64(len(e.header)))
	if be := p.bodies[e.bodyKey]; be != nil {
		be.refs--
		if be.refs <= 0 {
			delete(p.bodies, e.bodyKey)
			p.frozBytes.Add(-int64(len(be.data)))
		}
	}
}

// ReclaimFrozen trims the frozen cache until the pool is back under
// budget (or the cache is empty). Eviction order is deterministic:
// least-recent logical use first, key order breaking ties.
func (p *Pool) ReclaimFrozen() {
	p.frozenMu.Lock()
	evicted := p.reclaimFrozenLocked()
	p.frozenMu.Unlock()
	p.notifyEvicted(evicted)
}

func (p *Pool) reclaimFrozenLocked() []Key {
	if p.cfg.Budget <= 0 {
		return nil
	}
	var evicted []Key
	for p.TotalBytes() > p.cfg.Budget && len(p.frozen) > 0 {
		var victim *frozenEntry
		for _, e := range p.frozen {
			if victim == nil || e.lastUse < victim.lastUse ||
				(e.lastUse == victim.lastUse && keyLess(e.key, victim.key)) {
				victim = e
			}
		}
		p.releaseFrozenLocked(victim)
		p.frozEvicts.Add(1)
		evicted = append(evicted, victim.key)
	}
	return evicted
}

func (p *Pool) notifyEvicted(keys []Key) {
	if p.cfg.OnFrozenEvict == nil {
		return
	}
	for _, k := range keys {
		p.cfg.OnFrozenEvict(k)
	}
}

func keyLess(a, b Key) bool {
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	return a.CID < b.CID
}

// Budget returns the configured byte budget (<= 0 means unlimited).
func (p *Pool) Budget() int64 { return p.cfg.Budget }

// Sharing reports whether fingerprint-scoped blob dedup is enabled.
func (p *Pool) Sharing() bool { return p.cfg.Sharing }

// AttachedBytes is the bytes charged by live namespaces.
func (p *Pool) AttachedBytes() int64 { return p.attached.Load() }

// FrozenBytes is the bytes held by the frozen-blob cache.
func (p *Pool) FrozenBytes() int64 { return p.frozBytes.Load() }

// ArenaBytes is the bytes retained by the recycled-slab arena.
func (p *Pool) ArenaBytes() int64 { return p.arenaBytes.Load() }

// TotalBytes is the pool's resident footprint: attached + frozen + arena.
func (p *Pool) TotalBytes() int64 {
	return p.attached.Load() + p.frozBytes.Load() + p.arenaBytes.Load()
}

// OverBudget reports whether the resident footprint exceeds the budget.
func (p *Pool) OverBudget() bool {
	return p.cfg.Budget > 0 && p.TotalBytes() > p.cfg.Budget
}

// Namespaces returns the number of live namespaces.
func (p *Pool) Namespaces() int { return int(p.nsCount.Load()) }

// FrozenCount returns the number of cached frozen blobs.
func (p *Pool) FrozenCount() int {
	p.frozenMu.Lock()
	n := len(p.frozen)
	p.frozenMu.Unlock()
	return n
}

// TenantBytes returns a copy of the per-tenant attached-byte gauges.
// Tenants persist after their namespaces detach (gauge drops to zero)
// so dashboards keep a stable label set.
func (p *Pool) TenantBytes() map[string]int64 {
	p.tenantMu.Lock()
	out := make(map[string]int64, len(p.tenants))
	for t, g := range p.tenants {
		out[t] = g.Load()
	}
	p.tenantMu.Unlock()
	return out
}

// CountersSnapshot returns the monotonic event counters.
func (p *Pool) CountersSnapshot() Counters {
	return Counters{
		Attaches:        p.attaches.Load(),
		Detaches:        p.detaches.Load(),
		Freezes:         p.freezes.Load(),
		Thaws:           p.thaws.Load(),
		SharedRestores:  p.sharedRest.Load(),
		DedupHits:       p.dedupHits.Load(),
		FrozenEvictions: p.frozEvicts.Load(),
	}
}

// Namespace is one session's handle on the pool: the accounting scope
// its directory storage is charged to and the door to the slab arena.
type Namespace struct {
	pool     *Pool
	key      Key
	hash     uint64
	prov     uint64
	tenant   *atomic.Int64
	bytes    atomic.Int64
	fp       atomic.Value // string
	detached atomic.Bool
}

// Key returns the namespace key.
func (ns *Namespace) Key() Key { return ns.key }

// ProvenanceID is a pool-unique ID stamped on pattern state owned by
// this namespace; the slowcheck shadow mode asserts no session ever
// reads state stamped by another namespace.
func (ns *Namespace) ProvenanceID() uint64 { return ns.prov }

// Bytes returns the bytes currently charged to this namespace.
func (ns *Namespace) Bytes() int64 { return ns.bytes.Load() }

// Fingerprint returns the declared workload fingerprint ("" = none).
func (ns *Namespace) Fingerprint() string {
	s, _ := ns.fp.Load().(string)
	return s
}

// SetFingerprint updates the declared workload fingerprint (e.g. after a
// snapshot restore carries the original declaration forward).
func (ns *Namespace) SetFingerprint(fp string) { ns.fp.Store(fp) }

// Charge adds n bytes to the namespace's accounting (atomic, lock-free).
func (ns *Namespace) Charge(n int64) {
	if n == 0 {
		return
	}
	ns.bytes.Add(n)
	ns.tenant.Add(n)
	ns.pool.attached.Add(n)
}

// Uncharge removes n bytes from the namespace's accounting.
func (ns *Namespace) Uncharge(n int64) { ns.Charge(-n) }

// GetSlab pops a recycled storage slab of the given class from the
// shared arena, if one is available. The caller owns re-initialization.
func (ns *Namespace) GetSlab(class uint64) (any, bool) { return ns.pool.getSlab(class) }

// PutSlab returns a storage slab to the shared arena for reuse by the
// next namespace (dropped when retention would overrun the budget).
func (ns *Namespace) PutSlab(class uint64, v any, bytes int64) { ns.pool.putSlab(class, v, bytes) }
