package patternpool

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"llbpx/internal/hashutil"
)

func TestAttachDetachAccounting(t *testing.T) {
	p := New(Config{})
	a := p.Attach(Key{Tenant: "acme", CID: "acme/s1"}, "")
	b := p.Attach(Key{Tenant: "globex", CID: "globex/s1"}, "")
	if p.Namespaces() != 2 {
		t.Fatalf("Namespaces = %d, want 2", p.Namespaces())
	}
	a.Charge(1000)
	b.Charge(500)
	a.Uncharge(200)
	if got := p.AttachedBytes(); got != 1300 {
		t.Fatalf("AttachedBytes = %d, want 1300", got)
	}
	tb := p.TenantBytes()
	if tb["acme"] != 800 || tb["globex"] != 500 {
		t.Fatalf("TenantBytes = %v", tb)
	}
	// Detach is the accounting backstop: residual bytes drop with it.
	p.Detach(a)
	p.Detach(a) // idempotent
	if got := p.AttachedBytes(); got != 500 {
		t.Fatalf("AttachedBytes after detach = %d, want 500", got)
	}
	if tb := p.TenantBytes(); tb["acme"] != 0 {
		t.Fatalf("tenant gauge not zeroed: %v", tb)
	}
	p.Detach(b)
	if p.AttachedBytes() != 0 || p.Namespaces() != 0 {
		t.Fatalf("pool not empty: attached=%d ns=%d", p.AttachedBytes(), p.Namespaces())
	}
	c := p.CountersSnapshot()
	if c.Attaches != 2 || c.Detaches != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestAttachReplacesPrevious(t *testing.T) {
	p := New(Config{})
	k := Key{Tenant: "t", CID: "t/s"}
	old := p.Attach(k, "")
	old.Charge(100)
	neu := p.Attach(k, "fp")
	if p.Lookup(k) != neu {
		t.Fatal("Lookup must return the replacement namespace")
	}
	if p.AttachedBytes() != 0 {
		t.Fatalf("replaced namespace's bytes must drop, got %d", p.AttachedBytes())
	}
	if old.ProvenanceID() == neu.ProvenanceID() {
		t.Fatal("replacement must get a fresh provenance ID")
	}
	// Detaching the stale handle must not remove the replacement.
	p.Detach(old)
	if p.Lookup(k) != neu {
		t.Fatal("stale detach removed the live namespace")
	}
	p.Detach(neu)
}

func TestSlabArenaRecycle(t *testing.T) {
	p := New(Config{})
	ns := p.Attach(Key{Tenant: "t", CID: "t/s"}, "")
	if _, ok := ns.GetSlab(7); ok {
		t.Fatal("empty arena must miss")
	}
	want := []int32{1, 2, 3}
	ns.PutSlab(7, want, 12)
	if got := p.ArenaBytes(); got != 12 {
		t.Fatalf("ArenaBytes = %d, want 12", got)
	}
	v, ok := ns.GetSlab(7)
	if !ok || !reflect.DeepEqual(v, want) {
		t.Fatalf("GetSlab = %v, %v", v, ok)
	}
	if p.ArenaBytes() != 0 {
		t.Fatalf("ArenaBytes after reuse = %d", p.ArenaBytes())
	}
	// Classes don't cross: a different class misses.
	ns.PutSlab(7, want, 12)
	if _, ok := ns.GetSlab(8); ok {
		t.Fatal("class 8 must not see class 7 slabs")
	}
	p.Detach(ns)
}

func TestSlabRetentionBounded(t *testing.T) {
	p := New(Config{Budget: 400}) // arena cap = budget/4 = 100
	ns := p.Attach(Key{Tenant: "t", CID: "t/s"}, "")
	ns.PutSlab(1, "a", 80)
	ns.PutSlab(1, "b", 80) // would exceed the cap: dropped
	if got := p.ArenaBytes(); got != 80 {
		t.Fatalf("ArenaBytes = %d, want 80 (second slab dropped)", got)
	}
	p.Detach(ns)
}

func TestFreezeThawDedup(t *testing.T) {
	p := New(Config{Sharing: true})
	body := []byte("identical predictor state")
	k1 := Key{Tenant: "a", CID: "a/s1"}
	k2 := Key{Tenant: "b", CID: "b/s2"}
	p.Freeze(k1, "webapp-v3", []byte("h1"), body)
	p.Freeze(k2, "webapp-v3", []byte("h2"), append([]byte(nil), body...))
	if c := p.CountersSnapshot(); c.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", c.DedupHits)
	}
	// Body bytes counted once, headers each.
	want := int64(len(body)) + 2 + 2
	if got := p.FrozenBytes(); got != want {
		t.Fatalf("FrozenBytes = %d, want %d", got, want)
	}
	h, b, ok := p.Thaw(k1)
	if !ok || string(h) != "h1" || string(b) != string(body) {
		t.Fatalf("Thaw(k1) = %q %q %v", h, b, ok)
	}
	if c := p.CountersSnapshot(); c.SharedRestores != 1 {
		t.Fatalf("SharedRestores = %d, want 1", c.SharedRestores)
	}
	// The body must survive until its last reference thaws.
	_, b2, ok := p.Thaw(k2)
	if !ok || string(b2) != string(body) {
		t.Fatal("second reference lost its body")
	}
	if p.FrozenBytes() != 0 || p.FrozenCount() != 0 {
		t.Fatalf("cache not empty: bytes=%d count=%d", p.FrozenBytes(), p.FrozenCount())
	}
}

func TestNoDedupAcrossFingerprints(t *testing.T) {
	p := New(Config{Sharing: true})
	body := []byte("same bytes, different workloads")
	p.Freeze(Key{Tenant: "a", CID: "a/1"}, "fp-one", []byte("h"), body)
	p.Freeze(Key{Tenant: "a", CID: "a/2"}, "fp-two", []byte("h"), append([]byte(nil), body...))
	p.Freeze(Key{Tenant: "a", CID: "a/3"}, "", []byte("h"), append([]byte(nil), body...))
	if c := p.CountersSnapshot(); c.DedupHits != 0 {
		t.Fatalf("dedup crossed fingerprint boundaries: %+v", c)
	}
	pOff := New(Config{Sharing: false})
	pOff.Freeze(Key{Tenant: "a", CID: "a/1"}, "fp", []byte("h"), body)
	pOff.Freeze(Key{Tenant: "a", CID: "a/2"}, "fp", []byte("h"), append([]byte(nil), body...))
	if c := pOff.CountersSnapshot(); c.DedupHits != 0 {
		t.Fatalf("dedup ran with sharing disabled: %+v", c)
	}
}

// TestDeterministicFrozenEviction locks the eviction policy: the same
// seed and budget must produce the same eviction order, run to run —
// the pool keys LRU off a logical clock, never wall time, so snapshot
// reproduction and test reruns see identical victim sequences.
func TestDeterministicFrozenEviction(t *testing.T) {
	run := func(seed uint64) []Key {
		var order []Key
		p := New(Config{
			Budget:        4096,
			Sharing:       true,
			OnFrozenEvict: func(k Key) { order = append(order, k) },
		})
		rng := hashutil.NewRand(seed)
		for i := 0; i < 200; i++ {
			id := rng.Uint64() % 32
			k := Key{Tenant: fmt.Sprintf("t%d", id%4), CID: fmt.Sprintf("s%d", id)}
			switch rng.Uint64() % 4 {
			case 0, 1:
				body := make([]byte, 200+rng.Uint64()%400)
				p.Freeze(k, fmt.Sprintf("fp%d", id%8), []byte("hdr"), body)
			case 2:
				p.Thaw(k)
			case 3:
				p.Forget(k)
			}
		}
		if p.CountersSnapshot().FrozenEvictions == 0 {
			t.Fatal("budget pressure produced no evictions; test not exercising the policy")
		}
		return order
	}
	first := run(42)
	second := run(42)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("eviction order not deterministic:\n run1: %v\n run2: %v", first, second)
	}
	if reflect.DeepEqual(first, run(43)) {
		t.Fatal("different seeds produced identical op streams; seed not wired through")
	}
}

// TestConcurrentNamespaceChurn is the -race concurrency bar: attach,
// lookup, charge, freeze/thaw, and detach racing across shards must
// leave the accounting consistent and leak nothing (TestMain asserts
// the latter).
func TestConcurrentNamespaceChurn(t *testing.T) {
	p := New(Config{Budget: 1 << 20, Sharing: true, Shards: 8})
	shared := make([]*Namespace, 8)
	for i := range shared {
		shared[i] = p.Attach(Key{Tenant: "shared", CID: fmt.Sprintf("shared/s%d", i)}, "fp")
	}
	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hashutil.NewRand(uint64(w) + 1)
			for i := 0; i < iters; i++ {
				id := rng.Uint64() % 16
				k := Key{Tenant: fmt.Sprintf("t%d", id%4), CID: fmt.Sprintf("t%d/s%d", id%4, id)}
				switch rng.Uint64() % 5 {
				case 0:
					// A key is owned by one session at a time (serve's
					// session map guarantees it), so churn worker-unique
					// keys rather than racing replacements of one key.
					ns := p.Attach(Key{Tenant: k.Tenant, CID: fmt.Sprintf("%s-w%d", k.CID, w)}, "fp")
					ns.Charge(512)
					ns.Uncharge(512)
					p.Detach(ns)
				case 1:
					if ns := p.Lookup(shared[id%8].Key()); ns != nil {
						ns.Charge(64)
						ns.Uncharge(64)
						_ = ns.Fingerprint()
					}
				case 2:
					p.Freeze(k, "fp", []byte("h"), make([]byte, 256))
				case 3:
					p.Thaw(k)
				case 4:
					if v, ok := p.getSlab(3); ok {
						p.putSlab(3, v, 128)
					} else {
						p.putSlab(3, make([]byte, 128), 128)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, ns := range shared {
		p.Detach(ns)
	}
	// Every namespace attached by case 0 was detached; only frozen blobs
	// and arena slabs may remain.
	if p.AttachedBytes() != 0 {
		t.Fatalf("attached bytes leaked: %d", p.AttachedBytes())
	}
	for tenant, b := range p.TenantBytes() {
		if b != 0 {
			t.Fatalf("tenant %q gauge leaked: %d", tenant, b)
		}
	}
	if p.Namespaces() != 0 {
		t.Fatalf("namespaces leaked: %d", p.Namespaces())
	}
	if p.OverBudget() {
		t.Fatalf("pool over budget after churn: %d > %d", p.TotalBytes(), p.Budget())
	}
}
