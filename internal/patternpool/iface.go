package patternpool

// Attacher is implemented by predictors whose second-level pattern store
// can be backed by a pool namespace. The serving layer attaches a
// namespace right after constructing the predictor, before any branch is
// executed, so all of the predictor's pattern storage is charged to (and
// recycled through) the pool.
type Attacher interface {
	AttachPatternPool(*Namespace)
}

// Releaser is implemented by predictors that can hand their pattern
// storage back to the pool. Releasing drops every live pattern (and any
// derived caches such as the pattern buffer) — callers must have frozen
// or checkpointed whatever state they want to keep first.
type Releaser interface {
	ReleasePatternStore()
}
