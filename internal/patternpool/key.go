package patternpool

import (
	"crypto/sha256"
	"encoding/binary"
)

// AppendEncode appends the canonical encoding of k to dst: each field as
// a uvarint length prefix followed by its bytes. The length prefixes
// make the encoding injective — ("ab","c") and ("a","bc") cannot
// collide — which FuzzNamespaceKey locks.
func AppendEncode(dst []byte, k Key) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(k.Tenant)))
	dst = append(dst, k.Tenant...)
	dst = binary.AppendUvarint(dst, uint64(len(k.CID)))
	dst = append(dst, k.CID...)
	return dst
}

// DecodeKey inverts AppendEncode. ok is false on truncation, overlong
// lengths, or trailing bytes.
func DecodeKey(b []byte) (k Key, ok bool) {
	tenant, rest, ok := decodeField(b)
	if !ok {
		return Key{}, false
	}
	cid, rest, ok := decodeField(rest)
	if !ok || len(rest) != 0 {
		return Key{}, false
	}
	return Key{Tenant: tenant, CID: cid}, true
}

func decodeField(b []byte) (s string, rest []byte, ok bool) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", nil, false
	}
	return string(b[w : w+int(n)]), b[w+int(n):], true
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash is FNV-1a over the canonical encoding, computed without
// materializing it (allocation-free; used for shard routing).
func (k Key) Hash() uint64 {
	h := uint64(fnvOffset)
	h = hashField(h, k.Tenant)
	h = hashField(h, k.CID)
	return h
}

func hashField(h uint64, s string) uint64 {
	// Inline uvarint(len) exactly as AppendEncode emits it.
	n := uint64(len(s))
	for n >= 0x80 {
		h = (h ^ (n&0x7f | 0x80)) * fnvPrime
		n >>= 7
	}
	h = (h ^ n) * fnvPrime
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// bodySum is the content hash frozen-blob dedup keys on. Collision
// resistance matters here — two different predictor states must never
// dedup to one blob — so this is SHA-256, not FNV.
func bodySum(body []byte) [sha256.Size]byte {
	return sha256.Sum256(body)
}
