// Package hashutil provides the small deterministic hashing and
// pseudo-random primitives shared by the predictors and the workload
// generator: folded XOR hashes for index/tag formation, a 64-bit mixer, and
// a splitmix64 PRNG used wherever reproducible randomness is needed.
package hashutil

// Mix64 is the splitmix64 finalizer: a fast, high-quality 64-bit mixing
// function. It is the basis for context-ID hashing and for the synthetic
// workloads' deterministic "random" functions.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Combine folds b into a, producing a new 64-bit hash. It is associative
// enough for rolling use but order-sensitive, which context formation
// requires (the same unconditional branches in a different order must form
// a different context).
func Combine(a, b uint64) uint64 {
	return Mix64(a*0x9e3779b97f4a7c15 + b)
}

// Fold reduces a 64-bit value to n bits (1 <= n <= 63) by XOR-folding all
// 64 bits into the low n.
func Fold(x uint64, n uint) uint64 {
	if n >= 64 {
		return x
	}
	var out uint64
	for x != 0 {
		out ^= x & ((1 << n) - 1)
		x >>= n
	}
	return out
}

// PCMix spreads the entropy of an instruction address. Branch PCs tend to
// differ only in their low bits; PCMix makes all bits usable for indexing.
func PCMix(pc uint64) uint64 {
	return pc ^ (pc >> 2) ^ (pc >> 5)
}

// FNV1a returns the 64-bit FNV-1a hash of s. It is the string-keyed
// sibling of Mix64, used where string identifiers (session IDs) must be
// spread across shards without allocating.
func FNV1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Rand is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use NewRand to seed explicitly. It is
// deliberately tiny and allocation-free so workload models can embed one
// per branch site.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// State returns the current generator state, so deterministic components
// can checkpoint and later restore (via Seed) their random sequence.
func (r *Rand) State() uint64 { return r.state }

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return Mix64(r.state)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("hashutil: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}
