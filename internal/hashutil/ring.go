package hashutil

import "sort"

// Ring is a weighted consistent-hash ring with virtual nodes: the
// placement structure behind the cluster tier's session routing. Each
// member contributes weight × replicas points, hashed deterministically
// from the member name alone, so every process that builds a ring from
// the same membership computes the identical key → member assignment —
// no coordination, no persisted state.
//
// The property the cluster tier leans on is minimal movement: because a
// member's points depend only on its own name, adding or removing one
// member leaves every other member's points untouched. Keys only move
// between a changed member and the rest; an unrelated key's owner never
// changes. That is what makes membership churn a bounded migration, not
// a full reshuffle.
//
// A Ring is not safe for concurrent mutation; guard it (the gateway
// holds it under its own mutex) or treat it as immutable after build.
type Ring struct {
	replicas int
	weights  map[string]int
	points   []ringPoint // sorted by (hash, node)
}

// ringPoint is one virtual node: a position on the 64-bit circle and the
// member that owns it.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given points-per-weight-unit
// (clamped to at least 1). More replicas smooth the key distribution at
// the cost of a larger sorted point table; 64–128 per weight unit keeps
// skew within a few percent for realistic member counts.
func NewRing(replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	return &Ring{replicas: replicas, weights: make(map[string]int)}
}

// pointHash positions virtual node i of a member: the member name seeds
// an FNV-1a stream and Combine walks it per replica, so points are
// deterministic, well-spread, and independent of every other member.
func pointHash(node string, i int) uint64 {
	return Combine(FNV1a(node), uint64(i))
}

// keyHash positions a key on the circle.
func keyHash(key string) uint64 {
	return Mix64(FNV1a(key))
}

// Add inserts a member with the given weight (clamped to at least 1), or
// re-weights an existing member. Re-adding with the same weight is a
// no-op, so membership flapping (death verdict, then recovery) does not
// churn the point table.
func (r *Ring) Add(node string, weight int) {
	if weight < 1 {
		weight = 1
	}
	if w, ok := r.weights[node]; ok && w == weight {
		return
	}
	r.Remove(node)
	r.weights[node] = weight
	n := weight * r.replicas
	for i := 0; i < n; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes a member and its points; unknown members are a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.weights[node]; !ok {
		return
	}
	delete(r.weights, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the member owning key: the first point at or clockwise
// past the key's hash, wrapping at the top of the circle. An empty ring
// returns "".
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// LookupN returns up to n distinct members for key, in ring order: the
// owner first (identical to Lookup), then each successive distinct
// member clockwise. The second entry is the natural hot-standby
// placement — when the owner leaves the ring, the first remaining point
// past the key is by construction a point of that former successor, so
// Lookup(key) lands exactly where the standby already lives.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		node := r.points[(i+scanned)%len(r.points)].node
		seen := false
		for _, o := range out {
			if o == node {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, node)
		}
	}
	return out
}

// Contains reports whether node is a member.
func (r *Ring) Contains(node string) bool {
	_, ok := r.weights[node]
	return ok
}

// Weight returns a member's weight (0 for non-members).
func (r *Ring) Weight(node string) int { return r.weights[node] }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.weights) }

// Nodes returns the members, sorted by name.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.weights))
	for n := range r.weights {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
