package hashutil

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, 1 << 63, ^uint64(0)} {
		if Mix64(x) != Mix64(x) {
			t.Fatalf("Mix64(%d) not deterministic", x)
		}
	}
}

func TestMix64Spreads(t *testing.T) {
	// Neighbouring inputs must differ in many output bits (avalanche).
	for x := uint64(0); x < 1000; x++ {
		diff := Mix64(x) ^ Mix64(x+1)
		bits := 0
		for d := diff; d != 0; d >>= 1 {
			bits += int(d & 1)
		}
		if bits < 10 {
			t.Fatalf("Mix64 avalanche too weak at %d: %d differing bits", x, bits)
		}
	}
}

func TestMix64Injective(t *testing.T) {
	// splitmix64's finalizer is a bijection; spot-check for collisions.
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 100000; x++ {
		h := Mix64(x)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", x, prev)
		}
		seen[h] = x
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	a, b := uint64(0x1234), uint64(0x9876)
	if Combine(Combine(0, a), b) == Combine(Combine(0, b), a) {
		t.Fatal("Combine must be order sensitive (context IDs depend on branch order)")
	}
}

func TestFoldWidth(t *testing.T) {
	prop := func(x uint64, nRaw uint8) bool {
		n := uint(nRaw%63) + 1
		return Fold(x, n) < 1<<n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFoldFullWidth(t *testing.T) {
	if Fold(0xdeadbeef, 64) != 0xdeadbeef {
		t.Fatal("Fold with n >= 64 must be identity")
	}
}

func TestFoldPreservesParityOfSetBits(t *testing.T) {
	// Folding to 1 bit equals the XOR of all bits (parity).
	prop := func(x uint64) bool {
		parity := uint64(0)
		for v := x; v != 0; v >>= 1 {
			parity ^= v & 1
		}
		return Fold(x, 1) == parity
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministicAndSeeded(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield the same sequence")
		}
	}
	c := NewRand(8)
	same := 0
	a.Seed(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) rate %.4f far from 0.3", frac)
	}
}

func TestFNV1aReference(t *testing.T) {
	// Known FNV-1a vectors.
	cases := map[string]uint64{
		"":    14695981039346656037,
		"a":   0xaf63dc4c8601ec8c,
		"foo": 0xdcb27518fed9d577,
	}
	for s, want := range cases {
		if got := FNV1a(s); got != want {
			t.Fatalf("FNV1a(%q) = %#x, want %#x", s, got, want)
		}
	}
}

func TestFNV1aSpreadsShards(t *testing.T) {
	// Session-ID-like strings must spread across a small shard count.
	const shards = 16
	var counts [shards]int
	const n = 1024
	for i := 0; i < n; i++ {
		counts[FNV1a(fmt.Sprintf("session-%d", i))%shards]++
	}
	for s, c := range counts {
		if c < n/shards/4 || c > n/shards*4 {
			t.Fatalf("shard %d holds %d/%d keys: FNV1a spreads poorly", s, c, n)
		}
	}
}

func TestPCMixDeterministic(t *testing.T) {
	if PCMix(0x400123) != PCMix(0x400123) {
		t.Fatal("PCMix must be deterministic")
	}
	if PCMix(0x400120) == PCMix(0x400124) {
		t.Fatal("PCMix should distinguish adjacent instruction addresses")
	}
}
