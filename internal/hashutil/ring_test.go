package hashutil

import (
	"fmt"
	"testing"
)

// ringKeys generates n deterministic synthetic keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%d", i)
	}
	return keys
}

func TestRingTableDriven(t *testing.T) {
	cases := []struct {
		name     string
		build    func() *Ring
		key      string
		nonEmpty bool
	}{
		{"empty ring returns empty owner", func() *Ring { return NewRing(64) }, "k", false},
		{"single member owns everything", func() *Ring {
			r := NewRing(64)
			r.Add("a", 1)
			return r
		}, "anything", true},
		{"removing the only member empties the ring", func() *Ring {
			r := NewRing(64)
			r.Add("a", 1)
			r.Remove("a")
			return r
		}, "k", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.build()
			got := r.Lookup(tc.key)
			if (got != "") != tc.nonEmpty {
				t.Fatalf("Lookup(%q) = %q, want non-empty=%v", tc.key, got, tc.nonEmpty)
			}
		})
	}

	t.Run("single member owns every key", func(t *testing.T) {
		r := NewRing(16)
		r.Add("only", 1)
		for _, k := range ringKeys(100) {
			if got := r.Lookup(k); got != "only" {
				t.Fatalf("Lookup(%q) = %q, want %q", k, got, "only")
			}
		}
	})

	t.Run("placement is deterministic across builds and insert order", func(t *testing.T) {
		a := NewRing(64)
		a.Add("n1", 1)
		a.Add("n2", 2)
		a.Add("n3", 1)
		b := NewRing(64)
		b.Add("n3", 1)
		b.Add("n1", 1)
		b.Add("n2", 2)
		for _, k := range ringKeys(2000) {
			if a.Lookup(k) != b.Lookup(k) {
				t.Fatalf("insert order changed placement of %q: %q vs %q", k, a.Lookup(k), b.Lookup(k))
			}
		}
	})

	t.Run("re-adding with the same weight is a no-op", func(t *testing.T) {
		r := NewRing(64)
		r.Add("n1", 1)
		r.Add("n2", 1)
		before := make(map[string]string)
		for _, k := range ringKeys(500) {
			before[k] = r.Lookup(k)
		}
		r.Add("n1", 1)
		for k, want := range before {
			if got := r.Lookup(k); got != want {
				t.Fatalf("re-add moved %q: %q -> %q", k, want, got)
			}
		}
	})

	t.Run("membership accessors", func(t *testing.T) {
		r := NewRing(8)
		r.Add("b", 2)
		r.Add("a", 1)
		if !r.Contains("a") || r.Contains("z") {
			t.Fatal("Contains wrong")
		}
		if r.Weight("b") != 2 || r.Weight("z") != 0 {
			t.Fatal("Weight wrong")
		}
		if r.Len() != 2 {
			t.Fatalf("Len = %d, want 2", r.Len())
		}
		nodes := r.Nodes()
		if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
			t.Fatalf("Nodes = %v, want [a b]", nodes)
		}
	})
}

// TestRingDistributionSkew checks that key shares track weight shares:
// with enough virtual nodes a member's share of 20k keys stays within
// 25% relative error of weight/totalWeight.
func TestRingDistributionSkew(t *testing.T) {
	r := NewRing(128)
	weights := map[string]int{"n1": 1, "n2": 1, "n3": 2, "n4": 4}
	total := 0
	for n, w := range weights {
		r.Add(n, w)
		total += w
	}
	keys := ringKeys(20000)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for n, w := range weights {
		want := float64(len(keys)) * float64(w) / float64(total)
		got := float64(counts[n])
		if rel := (got - want) / want; rel < -0.25 || rel > 0.25 {
			t.Errorf("member %s (weight %d): %d keys, want ~%.0f (rel err %.1f%%)", n, w, counts[n], want, 100*rel)
		}
	}
}

// TestRingLookupN locks the standby-placement contract the replication
// tier leans on: LookupN's first entry matches Lookup, entries are
// distinct, and — the failover property — removing the owner makes
// Lookup land exactly on the former second entry.
func TestRingLookupN(t *testing.T) {
	t.Run("empty and degenerate", func(t *testing.T) {
		r := NewRing(16)
		if got := r.LookupN("k", 2); got != nil {
			t.Fatalf("LookupN on empty ring = %v, want nil", got)
		}
		r.Add("only", 1)
		if got := r.LookupN("k", 0); got != nil {
			t.Fatalf("LookupN(n=0) = %v, want nil", got)
		}
		got := r.LookupN("k", 3)
		if len(got) != 1 || got[0] != "only" {
			t.Fatalf("LookupN single-member = %v, want [only]", got)
		}
	})

	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		r.Add(n, 1)
	}
	for _, k := range ringKeys(2000) {
		got := r.LookupN(k, 2)
		if len(got) != 2 {
			t.Fatalf("LookupN(%q, 2) = %v, want 2 members", k, got)
		}
		if got[0] != r.Lookup(k) {
			t.Fatalf("LookupN(%q)[0] = %q, Lookup = %q", k, got[0], r.Lookup(k))
		}
		if got[0] == got[1] {
			t.Fatalf("LookupN(%q) repeated member %q", k, got[0])
		}
	}

	t.Run("owner removal promotes the successor", func(t *testing.T) {
		for _, k := range ringKeys(2000) {
			owners := r.LookupN(k, 2)
			r.Remove(owners[0])
			if got := r.Lookup(k); got != owners[1] {
				t.Fatalf("after removing owner %q of %q, Lookup = %q, want standby %q",
					owners[0], k, got, owners[1])
			}
			r.Add(owners[0], 1)
		}
	})

	t.Run("n larger than membership returns all members", func(t *testing.T) {
		got := r.LookupN("some-key", 99)
		if len(got) != r.Len() {
			t.Fatalf("LookupN(99) = %d members, want %d", len(got), r.Len())
		}
	})
}

// TestRingMinimalMovement locks the property the cluster tier's
// migration cost depends on: a membership change only moves keys between
// the changed member and the rest.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(10000)

	t.Run("add moves keys only onto the new member", func(t *testing.T) {
		r := NewRing(64)
		r.Add("n1", 1)
		r.Add("n2", 1)
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Lookup(k)
		}
		r.Add("n3", 1)
		moved := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if after != before[k] {
				moved++
				if after != "n3" {
					t.Fatalf("key %q moved %q -> %q, not onto the new member", k, before[k], after)
				}
			}
		}
		// n3 should take roughly a third of the key space; allow a wide
		// band but reject both no-op and reshuffle behavior.
		frac := float64(moved) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("add moved %.1f%% of keys, want roughly 33%%", 100*frac)
		}
	})

	t.Run("remove moves only the removed member's keys", func(t *testing.T) {
		r := NewRing(64)
		r.Add("n1", 1)
		r.Add("n2", 1)
		r.Add("n3", 1)
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Lookup(k)
		}
		r.Remove("n2")
		for _, k := range keys {
			after := r.Lookup(k)
			if before[k] == "n2" {
				if after == "n2" {
					t.Fatalf("key %q still maps to the removed member", k)
				}
			} else if after != before[k] {
				t.Fatalf("key %q not owned by the removed member moved %q -> %q", k, before[k], after)
			}
		}
	})

	t.Run("add then remove restores the original placement", func(t *testing.T) {
		r := NewRing(64)
		r.Add("n1", 1)
		r.Add("n2", 1)
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Lookup(k)
		}
		r.Add("n3", 1)
		r.Remove("n3")
		for k, want := range before {
			if got := r.Lookup(k); got != want {
				t.Fatalf("add+remove changed %q: %q -> %q", k, want, got)
			}
		}
	})
}
