package stats

import (
	"math"
	"strings"
	"testing"
)

func TestBranchStatsMPKI(t *testing.T) {
	s := BranchStats{Instructions: 2_000_000, Mispredicts: 5838}
	if got := s.MPKI(); math.Abs(got-2.919) > 1e-9 {
		t.Fatalf("MPKI = %v, want 2.919", got)
	}
	if (BranchStats{}).MPKI() != 0 {
		t.Fatal("empty stats must report 0 MPKI")
	}
}

func TestBranchStatsAccuracy(t *testing.T) {
	s := BranchStats{CondBranches: 1000, Mispredicts: 25}
	if got := s.Accuracy(); math.Abs(got-0.975) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if (BranchStats{}).Accuracy() != 1 {
		t.Fatal("no branches means perfect accuracy")
	}
}

func TestBranchStatsAdd(t *testing.T) {
	a := BranchStats{Instructions: 10, CondBranches: 2, Mispredicts: 1, UncondCount: 3, SecondLevelOK: 1, Overrides: 4}
	b := a
	a.Add(b)
	if a.Instructions != 20 || a.CondBranches != 4 || a.Mispredicts != 2 ||
		a.UncondCount != 6 || a.SecondLevelOK != 2 || a.Overrides != 8 {
		t.Fatalf("Add produced %+v", a)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(4.0, 3.0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Reduction = %v", got)
	}
	if Reduction(0, 3) != 0 {
		t.Fatal("zero base must not divide")
	}
	if Reduction(2, 3) >= 0 {
		t.Fatal("regression must be negative")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(5, 10)
	h.Add(1, 30)
	h.Add(9, 60)
	if h.Total() != 100 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(5) != 10 {
		t.Fatalf("Count(5) = %d", h.Count(5))
	}
	if keys := h.Keys(); len(keys) != 3 || keys[0] != 1 || keys[2] != 9 {
		t.Fatalf("Keys = %v", keys)
	}
	if q := h.Quantile(0.3); q != 1 {
		t.Fatalf("Quantile(0.3) = %d, want 1", q)
	}
	if q := h.Quantile(0.4); q != 5 {
		t.Fatalf("Quantile(0.4) = %d, want 5", q)
	}
	if q := h.Quantile(0.5); q != 9 {
		t.Fatalf("Quantile(0.5) = %d, want 9 (the 50th mass unit lies in bucket 9)", q)
	}
	if q := h.Quantile(1.0); q != 9 {
		t.Fatalf("Quantile(1.0) = %d, want 9", q)
	}
	want := (1.0*30 + 5.0*10 + 9.0*60) / 100
	if m := h.Mean(); math.Abs(m-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", m, want)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Total() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta", 42)
	out := tbl.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "1.500", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if row := tbl.Row(0); row[0] != "alpha" {
		t.Fatalf("Row(0) = %v", row)
	}
}

func TestFormatFloatStyles(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(0.01234)
	tbl.AddRow(3.14159)
	tbl.AddRow(123.456)
	tbl.AddRow(7.0)
	rows := []string{tbl.Row(0)[0], tbl.Row(1)[0], tbl.Row(2)[0], tbl.Row(3)[0]}
	want := []string{"0.0123", "3.142", "123.5", "7"}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, rows[i], want[i])
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	if GeoMean([]float64{0, 1}) > 1e-5 {
		t.Fatal("non-positive values must not blow up")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}
