package stats

import (
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("speedups", 20)
	c.Add("llbp", 1.0)
	c.Add("llbp-x", 2.0)
	c.Add("worse", -1.0)
	out := c.String()
	if !strings.Contains(out, "speedups") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected title + 3 bars, got %d lines:\n%s", len(lines), out)
	}
	// The largest value owns the full width; half value half the bar.
	full := strings.Count(lines[2], "#")
	half := strings.Count(lines[1], "#")
	if full != 20 {
		t.Fatalf("max bar should span the width: %d", full)
	}
	if half < 9 || half > 11 {
		t.Fatalf("half-value bar should be ~10: %d", half)
	}
	if !strings.Contains(lines[3], "<") {
		t.Fatal("negative bars must be visually marked")
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	c := NewBarChart("", 5)
	if c.String() != "" {
		t.Fatal("empty chart must render nothing")
	}
	c.Add("zero", 0)
	out := c.String()
	if strings.Count(out, "#") != 0 {
		t.Fatal("zero values draw no bar")
	}
}

func TestBarChartMinWidth(t *testing.T) {
	c := NewBarChart("t", 1)
	c.Add("a", 5)
	if !strings.Contains(c.String(), strings.Repeat("#", 10)) {
		t.Fatal("width must clamp to the minimum of 10")
	}
}
