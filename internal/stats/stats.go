// Package stats provides the small measurement toolkit used across the
// reproduction: misprediction accounting, histograms keyed by integer
// buckets, and plain-text table rendering for the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mispredict accounting ------------------------------------------------

// BranchStats accumulates the primary accuracy metrics of a simulation.
type BranchStats struct {
	Instructions  uint64
	CondBranches  uint64
	Mispredicts   uint64
	UncondCount   uint64
	SecondLevelOK uint64 // correct predictions provided by LLBP/LLBP-X
	Overrides     uint64 // final direction differed from the fast (1-cycle) component
}

// MPKI returns mispredictions per kilo-instruction.
func (s BranchStats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Instructions) * 1000
}

// Accuracy returns the fraction of conditional branches predicted
// correctly.
func (s BranchStats) Accuracy() float64 {
	if s.CondBranches == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.CondBranches)
}

// Add merges o into s.
func (s *BranchStats) Add(o BranchStats) {
	s.Instructions += o.Instructions
	s.CondBranches += o.CondBranches
	s.Mispredicts += o.Mispredicts
	s.UncondCount += o.UncondCount
	s.SecondLevelOK += o.SecondLevelOK
	s.Overrides += o.Overrides
}

// Reduction returns the relative MPKI reduction of x over base, as a
// fraction in [-inf, 1]: 0.12 means 12% fewer mispredictions.
func Reduction(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - x) / base
}

// Histogram -------------------------------------------------------------

// Histogram counts occurrences keyed by an int64 bucket (e.g. history
// length, patterns-per-context).
type Histogram struct {
	counts map[int64]uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]uint64)}
}

// Add increments bucket k by n.
func (h *Histogram) Add(k int64, n uint64) {
	h.counts[k] += n
}

// Count returns the count in bucket k.
func (h *Histogram) Count(k int64) uint64 { return h.counts[k] }

// Total returns the sum over all buckets.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Keys returns the bucket keys in ascending order.
func (h *Histogram) Keys() []int64 {
	ks := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Quantile returns the smallest bucket key at or below which fraction q of
// the mass lies. q must be in [0, 1].
func (h *Histogram) Quantile(q float64) int64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for _, k := range h.Keys() {
		cum += h.counts[k]
		if cum >= target {
			return k
		}
	}
	ks := h.Keys()
	return ks[len(ks)-1]
}

// Mean returns the count-weighted mean bucket key.
func (h *Histogram) Mean() float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var sum float64
	for k, c := range h.counts {
		sum += float64(k) * float64(c)
	}
	return sum / float64(total)
}

// Table rendering --------------------------------------------------------

// Table renders rows of labelled values as aligned plain text, the output
// format of every experiment in cmd/experiments.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, and float64 cells with
// four significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the formatted cells of row i.
func (t *Table) Row(i int) []string { return t.rows[i] }

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e12:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// GeoMean returns the geometric mean of xs, treating values <= 0 as 1e-12
// to stay defined. It is the aggregation the paper uses for speedups.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
