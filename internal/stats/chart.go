package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labelled values as a horizontal ASCII bar chart — the
// closest a terminal gets to the paper's figures. Bars scale to the
// largest absolute value; negative values extend a '<'-marked bar so
// regressions remain visible.
type BarChart struct {
	Title string
	rows  []barRow
	width int
}

type barRow struct {
	label string
	value float64
}

// NewBarChart returns a chart whose bars occupy up to width characters
// (minimum 10).
func NewBarChart(title string, width int) *BarChart {
	if width < 10 {
		width = 10
	}
	return &BarChart{Title: title, width: width}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.rows = append(c.rows, barRow{label, value})
}

// String renders the chart.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(c.rows) == 0 {
		return b.String()
	}
	labelW, maxAbs := 0, 0.0
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
		if a := math.Abs(r.value); a > maxAbs {
			maxAbs = a
		}
	}
	for _, r := range c.rows {
		n := 0
		if maxAbs > 0 {
			n = int(math.Round(math.Abs(r.value) / maxAbs * float64(c.width)))
		}
		bar := strings.Repeat("#", n)
		if r.value < 0 {
			bar = "<" + strings.Repeat("-", n)
		}
		fmt.Fprintf(&b, "  %-*s | %-*s %g\n", labelW, r.label, c.width+1, bar, round4(r.value))
	}
	return b.String()
}

func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}
