package llbpx_test

// Observability-overhead gate: the simulator's observer hook must be free
// when disabled and allocation-free when an observer is registered but
// does nothing. An absolute zero-alloc bar is impossible at the Simulate
// level (each call allocates its source adapter and Extra stats map once),
// so the gate is differential: the nil-observer and idle-observer runs
// must allocate identically, and both must stay within a small constant —
// a single per-branch allocation across the ~25k-branch window would blow
// the bound by orders of magnitude.

import (
	"testing"

	"llbpx"
)

// idleObserver is registered but does nothing — the "observer attached,
// nobody looking" configuration the disabled-path gate measures.
type idleObserver struct{ calls uint64 }

func (o *idleObserver) ObserveBranch(b llbpx.Branch, pred llbpx.Prediction, measuring bool) {
	o.calls++
}

func TestObserverDisabledPathAllocFree(t *testing.T) {
	if slowcheckEnabled {
		t.Skip("slowcheck shadow maps allocate by design")
	}
	warm, window := zaStream(t, "nodeapp", 400_000, 100_000)
	p, err := llbpx.NewPredictorByName("tsl-64k")
	if err != nil {
		t.Fatal(err)
	}
	run := func(obs llbpx.SimObserver) {
		_, err := llbpx.Simulate(p, llbpx.NewSliceSource(window),
			llbpx.SimOptions{MeasureInstr: 1 << 40, Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Warm the predictor, then settle both paths once so lazily-grown
	// structures reach working size before measurement.
	_, err = llbpx.Simulate(p, llbpx.NewSliceSource(warm), llbpx.SimOptions{MeasureInstr: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	obs := &idleObserver{}
	run(nil)
	run(obs)

	base := testing.AllocsPerRun(5, func() { run(nil) })
	idle := testing.AllocsPerRun(5, func() { run(obs) })
	if base != idle {
		t.Errorf("idle observer changes allocation count: disabled=%.1f idle=%.1f allocs/run", base, idle)
	}
	// Both paths may only pay Simulate's constant per-call setup; anything
	// proportional to the ~25k-branch window is a hot-path regression.
	const maxConstAllocs = 64
	if base > maxConstAllocs || idle > maxConstAllocs {
		t.Errorf("per-branch allocation leaked into the simulate path: disabled=%.1f idle=%.1f allocs/run (max %d)",
			base, idle, maxConstAllocs)
	}
	if obs.calls == 0 {
		t.Fatal("idle observer was never invoked — the gate measured nothing")
	}
}
