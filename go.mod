module llbpx

go 1.23
