package llbpx_test

// Snapshot round-trip divergence matrix: for every registry predictor and
// every synthetic workload, a predictor warmed on the stream's head,
// checkpointed, and restored into a fresh instance must produce
// bit-identical predictions and statistics over the stream's tail compared
// to a reference that was never snapshotted. This is the golden bar of the
// checkpointing subsystem — "close" MPKI is not enough, because a single
// mis-restored counter silently skews every downstream experiment.

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"llbpx"
)

// Segment sizes in instructions: long enough that the warm predictor holds
// non-trivial state in every component (TAGE tables, loop predictor, SC,
// RCR, pattern sets, pattern buffer, CTT), short enough that the full
// 10x14 matrix stays in tier-1 test budget.
const (
	rtWarmInstr    = 40_000
	rtCompareInstr = 80_000
)

// rtStream is one workload's materialized branch stream, split at the
// warm/compare boundary.
type rtStream struct {
	warm    []llbpx.Branch
	compare []llbpx.Branch
}

// rtStreams materializes each workload's stream exactly once, shared
// read-only by every predictor's subtests.
var rtStreams = sync.OnceValue(func() map[string]*rtStream {
	out := make(map[string]*rtStream)
	for _, name := range llbpx.WorkloadNames() {
		prof, err := llbpx.WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		prog, err := llbpx.BuildProgram(prof)
		if err != nil {
			panic(err)
		}
		gen := llbpx.NewGenerator(prog)
		st := &rtStream{}
		for instr := uint64(0); instr < rtWarmInstr; {
			b, ok := gen.Next()
			if !ok {
				break
			}
			instr += b.Instructions()
			st.warm = append(st.warm, b)
		}
		for instr := uint64(0); instr < rtCompareInstr; {
			b, ok := gen.Next()
			if !ok {
				break
			}
			instr += b.Instructions()
			st.compare = append(st.compare, b)
		}
		out[name] = st
	}
	return out
})

// rtDrive feeds branches through p, appending the Prediction of every
// conditional branch to sink (when non-nil) and returning it.
func rtDrive(p llbpx.Predictor, branches []llbpx.Branch, sink []llbpx.Prediction) []llbpx.Prediction {
	for _, b := range branches {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			if sink != nil {
				sink = append(sink, pred)
			}
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
		}
	}
	return sink
}

// rtStats returns the predictor's internal counter map, or nil if it does
// not expose one.
func rtStats(p llbpx.Predictor) map[string]float64 {
	if sp, ok := p.(interface{ Stats() map[string]float64 }); ok {
		return sp.Stats()
	}
	return nil
}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	for _, predName := range llbpx.PredictorNames() {
		for _, wlName := range llbpx.WorkloadNames() {
			t.Run(predName+"/"+wlName, func(t *testing.T) {
				t.Parallel()
				st := rtStreams()[wlName]
				if st == nil || len(st.compare) == 0 {
					t.Fatalf("no stream for workload %q", wlName)
				}

				// Reference: never snapshotted, drives the whole stream.
				ref, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				rtDrive(ref, st.warm, nil)
				wantPreds := rtDrive(ref, st.compare, make([]llbpx.Prediction, 0, len(st.compare)))

				// Candidate: warmed identically, checkpointed, restored into
				// a fresh instance, then driven over the tail.
				cand, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				rtDrive(cand, st.warm, nil)
				var buf bytes.Buffer
				if err := llbpx.SavePredictorState(&buf, predName, cand); err != nil {
					t.Fatal(err)
				}
				restored, gotName, err := llbpx.LoadPredictorState(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				if gotName != predName {
					t.Fatalf("restored name %q, want %q", gotName, predName)
				}
				gotPreds := rtDrive(restored, st.compare, make([]llbpx.Prediction, 0, len(st.compare)))

				if len(gotPreds) != len(wantPreds) {
					t.Fatalf("prediction count %d != %d", len(gotPreds), len(wantPreds))
				}
				for i := range wantPreds {
					if gotPreds[i] != wantPreds[i] {
						t.Fatalf("first divergence at conditional %d of %d: restored %+v, reference %+v",
							i, len(wantPreds), gotPreds[i], wantPreds[i])
					}
				}
				if want, got := rtStats(ref), rtStats(restored); !reflect.DeepEqual(want, got) {
					t.Errorf("internal counters diverged after identical stream:\nreference %v\nrestored  %v", want, got)
				}
			})
		}
	}
}

// TestSnapshotRestoreAfterSaveContinuesIdentically covers the other
// consumer ordering: the predictor that was saved keeps running — its
// future must match its own snapshot's future (Save must not perturb live
// state).
func TestSnapshotRestoreAfterSaveContinuesIdentically(t *testing.T) {
	t.Parallel()
	st := rtStreams()["nodeapp"]
	for _, predName := range []string{"tsl-64k", "llbp", "llbp-x"} {
		p, err := llbpx.NewPredictorByName(predName)
		if err != nil {
			t.Fatal(err)
		}
		rtDrive(p, st.warm, nil)
		var buf bytes.Buffer
		if err := llbpx.SavePredictorState(&buf, predName, p); err != nil {
			t.Fatal(err)
		}
		cont := rtDrive(p, st.compare, make([]llbpx.Prediction, 0, len(st.compare)))
		restored, _, err := llbpx.LoadPredictorState(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		again := rtDrive(restored, st.compare, make([]llbpx.Prediction, 0, len(st.compare)))
		for i := range cont {
			if cont[i] != again[i] {
				t.Fatalf("%s: saved-and-continued diverges from restored at conditional %d", predName, i)
			}
		}
	}
}

// TestCorruptSnapshotNeverLoads: every single-byte corruption and every
// truncation of a real predictor snapshot must fail with
// ErrSnapshotCorrupt — never succeed, never panic.
func TestCorruptSnapshotNeverLoads(t *testing.T) {
	t.Parallel()
	st := rtStreams()["chirper"]
	p, err := llbpx.NewPredictorByName("tsl-8k")
	if err != nil {
		t.Fatal(err)
	}
	rtDrive(p, st.warm, nil)
	var buf bytes.Buffer
	if err := llbpx.SavePredictorState(&buf, "tsl-8k", p); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()

	// Sampled byte flips across the stream (every byte would be slow on a
	// multi-kilobyte snapshot); always include the header and trailer.
	positions := []int{0, 1, 7, 8, 9, 10, len(orig) / 4, len(orig) / 2, len(orig) - 5, len(orig) - 1}
	for step := 37; step < len(orig); step += 97 {
		positions = append(positions, step)
	}
	for _, i := range positions {
		data := bytes.Clone(orig)
		data[i] ^= 0x6d
		if _, _, err := llbpx.LoadPredictorState(bytes.NewReader(data)); err == nil {
			t.Fatalf("corruption at byte %d/%d loaded successfully", i, len(orig))
		}
	}
	for _, n := range []int{0, 4, 8, 12, len(orig) / 2, len(orig) - 4, len(orig) - 1} {
		_, _, err := llbpx.LoadPredictorState(bytes.NewReader(orig[:n]))
		if !errors.Is(err, llbpx.ErrSnapshotCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrSnapshotCorrupt", n, err)
		}
	}
}

// TestSnapshotUnknownPredictorName: a snapshot naming a configuration the
// registry does not know must error out of construct, not panic.
func TestSnapshotUnknownPredictorName(t *testing.T) {
	t.Parallel()
	st := rtStreams()["nodeapp"]
	p, err := llbpx.NewPredictorByName("tsl-8k")
	if err != nil {
		t.Fatal(err)
	}
	rtDrive(p, st.warm[:1000], nil)
	var buf bytes.Buffer
	if err := llbpx.SavePredictorState(&buf, "no-such-predictor", p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := llbpx.LoadPredictorState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("snapshot with unknown predictor name loaded successfully")
	}
}
