package llbpx_test

import (
	"fmt"

	"llbpx"
)

// ExampleWorkloadNames lists the Table I workload presets.
func ExampleWorkloadNames() {
	names := llbpx.WorkloadNames()
	fmt.Println(len(names), "workloads")
	fmt.Println(names[0], "...", names[len(names)-1])
	// Output:
	// 14 workloads
	// nodeapp ... whiskey
}

// ExampleHistoryLengths shows the TAGE history-length table the whole
// predictor family shares.
func ExampleHistoryLengths() {
	lens := llbpx.HistoryLengths()
	fmt.Println(len(lens), "lengths, from", lens[0], "to", lens[len(lens)-1], "bits")
	// Output:
	// 21 lengths, from 6 to 3000 bits
}

// ExampleSimulate runs the baseline predictor over a tiny slice of a
// synthetic workload. Everything is deterministic, so the simulation is
// reproducible bit for bit.
func ExampleSimulate() {
	prof, _ := llbpx.WorkloadByName("kafka")
	prog, _ := llbpx.BuildProgram(prof)
	p, _ := llbpx.NewTSL(llbpx.TSL64K())
	res, _ := llbpx.Simulate(p, llbpx.NewGenerator(prog),
		llbpx.SimOptions{WarmupInstr: 50_000, MeasureInstr: 50_000})
	total := res.Warmup.Instructions + res.Measured.Instructions
	fmt.Println(res.Predictor, "simulated", total >= 100_000)
	// Output:
	// tsl-64k simulated true
}

// ExampleNewLLBPX builds the paper's LLBP-X configuration and inspects its
// shape.
func ExampleNewLLBPX() {
	cfg := llbpx.LLBPXDefault()
	fmt.Println("depths:", cfg.WShallow, "/", cfg.WDeep)
	fmt.Println("ctt entries:", cfg.CTTEntries)
	p, err := llbpx.NewLLBPX(cfg)
	fmt.Println(p.Name(), err)
	// Output:
	// depths: 2 / 64
	// ctt entries: 6144
	// llbp-x <nil>
}
