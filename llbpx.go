// Package llbpx is a from-scratch Go reproduction of "The Last-Level
// Branch Predictor Revisited" (HPCA 2026): the TAGE-SC-L predictor family,
// the hierarchical LLBP design, and the paper's contribution LLBP-X with
// dynamic context depth adaptation — plus the synthetic server workloads,
// the branch-level simulator, the timing and energy models, and the
// harness that regenerates every table and figure of the evaluation.
//
// # Quick start
//
//	prof, _ := llbpx.WorkloadByName("nodeapp")
//	prog, _ := llbpx.BuildProgram(prof)
//	res, _ := llbpx.Simulate(llbpx.NewLLBPX(llbpx.LLBPXDefault()),
//		llbpx.NewGenerator(prog), llbpx.SimOptions{WarmupInstr: 1e6, MeasureInstr: 2e6})
//	fmt.Println(res.MPKI())
//
// The runnable programs under examples/ and the cmd/ tools build only on
// this package.
package llbpx

import (
	"context"
	"fmt"
	"io"
	"os"

	"llbpx/internal/analyze"
	"llbpx/internal/btb"
	"llbpx/internal/core"
	"llbpx/internal/experiments"
	"llbpx/internal/llbp"
	llbpximpl "llbpx/internal/llbpx"
	"llbpx/internal/pipeline"
	"llbpx/internal/serve"
	"llbpx/internal/sim"
	"llbpx/internal/snapshot"
	"llbpx/internal/stats"
	"llbpx/internal/tage"
	"llbpx/internal/trace"
	"llbpx/internal/workload"
)

// Core vocabulary ---------------------------------------------------------

// Branch is one retired control-flow instruction.
type Branch = core.Branch

// BranchKind classifies a branch.
type BranchKind = core.BranchKind

// Branch kinds.
const (
	CondDirect   = core.CondDirect
	Jump         = core.Jump
	Call         = core.Call
	Return       = core.Return
	IndirectJump = core.IndirectJump
)

// Prediction is a direction prediction with provenance.
type Prediction = core.Prediction

// Predictor is the contract every predictor implements.
type Predictor = core.Predictor

// Source yields a branch stream.
type Source = core.Source

// NewSliceSource adapts a branch slice to a Source.
func NewSliceSource(branches []Branch) Source { return core.NewSliceSource(branches) }

// Workloads ---------------------------------------------------------------

// WorkloadProfile parameterizes a synthetic server workload.
type WorkloadProfile = workload.Profile

// Program is a compiled workload.
type Program = workload.Program

// Generator executes a Program into a branch stream; it implements Source.
type Generator = workload.Generator

// Workloads returns the 14 preset profiles mirroring the paper's Table I.
func Workloads() []WorkloadProfile { return workload.Workloads() }

// WorkloadNames returns the preset names in Table I order.
func WorkloadNames() []string { return workload.Names() }

// WorkloadByName returns a preset profile.
func WorkloadByName(name string) (WorkloadProfile, error) { return workload.ByName(name) }

// DefaultWorkload returns a mid-sized custom profile to derive from.
func DefaultWorkload(name string, seed uint64) WorkloadProfile { return workload.Default(name, seed) }

// BuildProgram compiles a profile.
func BuildProgram(p WorkloadProfile) (*Program, error) { return workload.Build(p) }

// NewGenerator starts a program's branch stream.
func NewGenerator(p *Program) *Generator { return workload.NewGenerator(p) }

// Predictors ---------------------------------------------------------------

// TSLConfig parameterizes a TAGE-SC-L instance.
type TSLConfig = tage.Config

// TSL presets: storage budgets in the paper's naming.
func TSL8K() TSLConfig   { return tage.Config8K() }
func TSL16K() TSLConfig  { return tage.Config16K() }
func TSL32K() TSLConfig  { return tage.Config32K() }
func TSL64K() TSLConfig  { return tage.Config64K() }
func TSL128K() TSLConfig { return tage.Config128K() }
func TSL512K() TSLConfig { return tage.Config512K() }
func TSLInf() TSLConfig  { return tage.ConfigInf() }

// TSLPredictor is a TAGE-SC-L instance.
type TSLPredictor = tage.Predictor

// NewTSL builds a TAGE-SC-L predictor.
func NewTSL(cfg TSLConfig) (*TSLPredictor, error) { return tage.New(cfg) }

// LLBPConfig parameterizes the original LLBP.
type LLBPConfig = llbp.Config

// LLBPDefault is the paper's baseline LLBP configuration (515KB, W=8,
// D=4).
func LLBPDefault() LLBPConfig { return llbp.Default() }

// LLBPZeroLatency is the LLBP-0Lat configuration.
func LLBPZeroLatency() LLBPConfig { return llbp.ZeroLatency() }

// LLBPPredictor is an original-LLBP instance.
type LLBPPredictor = llbp.Predictor

// NewLLBP builds an LLBP predictor.
func NewLLBP(cfg LLBPConfig) (*LLBPPredictor, error) { return llbp.New(cfg) }

// LLBPXConfig parameterizes LLBP-X.
type LLBPXConfig = llbpximpl.Config

// LLBPXDefault is the paper's LLBP-X configuration (dynamic context depth
// adaptation + history range selection).
func LLBPXDefault() LLBPXConfig { return llbpximpl.Default() }

// LLBPXPredictor is an LLBP-X instance.
type LLBPXPredictor = llbpximpl.Predictor

// NewLLBPX builds an LLBP-X predictor.
func NewLLBPX(cfg LLBPXConfig) (*LLBPXPredictor, error) { return llbpximpl.New(cfg) }

// NewPredictorByName builds any predictor configuration from a registry
// spec: a bare name ("tsl-8k" … "tsl-inf", "llbp", "llbp-0lat", "llbp-x",
// "bullseye", "tournament") or a parameterized form such as
// "tournament(members=tsl-8k+llbp,chooser_bits=12)" — the vocabulary
// cmd/llbpsim and the llbpd serving layer share.
func NewPredictorByName(spec string) (Predictor, error) { return serve.NewPredictor(spec) }

// PredictorNames lists the registry's predictor configuration names.
func PredictorNames() []string { return serve.PredictorNames() }

// PredictorSpec is a parsed predictor spec: a registry name plus explicit
// parameters.
type PredictorSpec = serve.PredictorSpec

// ParseSpec parses "name" or "name(key=value,...)" into a PredictorSpec.
// It validates syntax only; parameter names, types, and ranges are checked
// against the registered schema when the spec is resolved.
func ParseSpec(spec string) (PredictorSpec, error) { return serve.ParseSpec(spec) }

// CanonicalPredictorName resolves a spec against the registry and returns
// its canonical form: parameters validated, defaults elided, keys sorted.
// Two specs naming the same configuration canonicalize identically, which
// is the identity llbpd sessions and snapshots key on.
func CanonicalPredictorName(spec string) (string, error) {
	return serve.CanonicalPredictorName(spec)
}

// PredictorFactory builds a fresh predictor instance for one registered
// configuration.
type PredictorFactory = serve.PredictorFactory

// SpecFactory builds a predictor from its canonical spec string and
// resolved parameters.
type SpecFactory = serve.SpecFactory

// Params carries a spec's resolved parameters (defaults filled in,
// values validated and normalized).
type Params = serve.Params

// ParamKind is a predictor parameter's type.
type ParamKind = serve.ParamKind

// Parameter kinds.
const (
	ParamInt      = serve.ParamInt
	ParamBool     = serve.ParamBool
	ParamString   = serve.ParamString
	ParamSpecList = serve.ParamSpecList
)

// ParamDef declares one parameter a predictor accepts.
type ParamDef = serve.ParamDef

// ParamInfo describes one parameter in a PredictorInfo.
type ParamInfo = serve.ParamInfo

// PredictorInfo describes one registry entry: name, one-line summary,
// parameter schema, and estimated second-level storage.
type PredictorInfo = serve.PredictorInfo

// RegisterPredictor adds a named predictor configuration to the shared
// registry. The name becomes usable everywhere registry specs are:
// NewPredictorByName, cmd/llbpsim -predictor, llbpd session creation, and
// snapshot loading. Registration fails (rather than overwrites) on an
// empty name, a nil factory, or a name already taken — built-ins cannot
// be shadowed.
func RegisterPredictor(name, desc string, factory PredictorFactory) error {
	return serve.RegisterPredictor(name, desc, factory)
}

// RegisterPredictorSpec adds a parameterized predictor configuration:
// schema declares the accepted parameters (with typed defaults and
// ranges), storage optionally estimates the configuration's second-level
// bytes, and factory receives the canonical spec plus resolved parameters.
func RegisterPredictorSpec(name, desc string, schema []ParamDef, storage func(Params) int64, factory SpecFactory) error {
	return serve.RegisterPredictorSpec(name, desc, schema, storage, factory)
}

// DescribePredictor resolves a spec and returns its full metadata —
// canonical name, description, parameter schema, storage estimate — and
// whether the spec resolves.
func DescribePredictor(spec string) (PredictorInfo, bool) { return serve.DescribePredictor(spec) }

// Predictors returns every registry entry, sorted by name.
func Predictors() []PredictorInfo { return serve.Predictors() }

// Checkpointing -------------------------------------------------------------

// SavePredictorState serializes a predictor's complete learned state —
// tables, histories, replacement metadata, statistics — to w in the
// versioned, CRC-guarded snapshot format. name must be the registry name
// the predictor was built from; it is embedded so LoadPredictorState can
// reconstruct the right configuration.
func SavePredictorState(w io.Writer, name string, p Predictor) error {
	st, ok := p.(snapshot.State)
	if !ok {
		return fmt.Errorf("llbpx: predictor %T does not support snapshots", p)
	}
	return snapshot.Save(w, name, st)
}

// LoadPredictorState reconstructs a predictor from a snapshot written by
// SavePredictorState. The restored instance produces bit-identical
// predictions and statistics to the one that was saved. Corrupt or
// version-incompatible bytes return an error wrapping snapshot.ErrCorrupt;
// callers should treat that as "start cold", never as fatal.
func LoadPredictorState(r io.Reader) (Predictor, string, error) {
	st, name, err := snapshot.Load(r, func(name string) (snapshot.State, error) {
		p, err := serve.NewPredictor(name)
		if err != nil {
			return nil, err
		}
		s, ok := p.(snapshot.State)
		if !ok {
			return nil, fmt.Errorf("predictor %q does not support snapshots", name)
		}
		return s, nil
	})
	if err != nil {
		return nil, "", err
	}
	return st.(Predictor), name, nil
}

// SavePredictorFile checkpoints a predictor to path crash-consistently
// (temp file + fsync + rename).
func SavePredictorFile(path, name string, p Predictor) error {
	st, ok := p.(snapshot.State)
	if !ok {
		return fmt.Errorf("llbpx: predictor %T does not support snapshots", p)
	}
	return snapshot.WriteFile(path, name, st)
}

// LoadPredictorFile restores a predictor from a snapshot file.
func LoadPredictorFile(path string) (Predictor, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return LoadPredictorState(f)
}

// ErrSnapshotCorrupt is the sentinel wrapped by every snapshot decode
// failure (bad magic, unknown version, CRC mismatch, truncation,
// out-of-range state).
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// HistoryLengths exposes the 21 TAGE global-history lengths.
func HistoryLengths() []int {
	out := make([]int, tage.NumTables)
	copy(out, tage.HistoryLengths[:])
	return out
}

// Simulation ---------------------------------------------------------------

// SimOptions bounds a simulation (instruction counts).
type SimOptions = sim.Options

// SimResult is a simulation outcome; MPKI() is the headline metric.
type SimResult = sim.Result

// SimObserver receives one callback per simulated conditional branch; see
// sim.Observer for the hot-path contract (nil is free, implementations
// must not retain arguments).
type SimObserver = sim.Observer

// Simulate drives a predictor over a branch stream in retire order.
func Simulate(p Predictor, src Source, opt SimOptions) (SimResult, error) {
	return sim.Run(p, src, opt)
}

// SimulateContext is Simulate with cancellation: the context is checked at
// internal batch boundaries, and a cancelled run returns the partial
// result accumulated so far together with ctx.Err().
func SimulateContext(ctx context.Context, p Predictor, src Source, opt SimOptions) (SimResult, error) {
	return sim.RunContext(ctx, p, src, opt)
}

// Misprediction attribution --------------------------------------------------

// MispredictAttribution accumulates per-static-branch misprediction
// attribution from a simulation: pass one as SimOptions.Observer, then
// read TopK or render Table for the paper-style H2P breakdown (which
// static branches concentrate the misprediction mass, and which provider
// component — bimodal base, short- or long-history TAGE table, or the
// second-level pattern buffer — was providing on each miss).
type MispredictAttribution = analyze.Attribution

// BranchProfile is one static branch's accumulated attribution record.
type BranchProfile = analyze.BranchProfile

// NewMispredictAttribution returns an empty attribution observer.
func NewMispredictAttribution() *MispredictAttribution { return analyze.NewAttribution() }

// AttributionExport is the machine-readable attribution artifact
// (MispredictAttribution.ExportTopK, llbpsim -attr -json): the H2P set in
// misprediction-share order, the format bullseye's h2p_file= spec
// parameter consumes.
type AttributionExport = analyze.Export

// AttributionExportRow is one static branch in an AttributionExport.
type AttributionExportRow = analyze.ExportRow

// Timing model --------------------------------------------------------------

// CoreConfig describes a cycle-approximate core model.
type CoreConfig = pipeline.CoreConfig

// CoreActivity is the model input derived from a simulation.
type CoreActivity = pipeline.Activity

// CoreResult is the model's timing outcome.
type CoreResult = pipeline.Result

// ServerCore returns the Table II-like core configuration.
func ServerCore() CoreConfig { return pipeline.Server() }

// Speedup compares two timing results.
func Speedup(base, x CoreResult) float64 { return pipeline.Speedup(base, x) }

// Traces ---------------------------------------------------------------------

// WriteTrace encodes branches to w in the repository's binary format.
func WriteTrace(w io.Writer, branches []Branch) error { return trace.WriteAll(w, branches) }

// ReadTrace decodes a full trace from r.
func ReadTrace(r io.Reader) ([]Branch, error) { return trace.ReadAll(r) }

// NewTraceReader returns a streaming trace decoder (a Source).
func NewTraceReader(r io.Reader) (*trace.Reader, error) { return trace.NewReader(r) }

// NewTraceWriter returns a streaming trace encoder.
func NewTraceWriter(w io.Writer) (*trace.Writer, error) { return trace.NewWriter(w) }

// NewChampSimReader decodes a ChampSim instruction trace (the paper
// artifact's format) into a branch Source; plain and gzip streams are
// supported.
func NewChampSimReader(r io.Reader) (*trace.ChampSimReader, error) {
	return trace.NewChampSimReader(r)
}

// ExportChampSim writes a branch stream as a ChampSim instruction trace,
// runnable in the paper's reference artifact. It stops after maxInstr
// instructions and returns the instruction and branch counts written.
func ExportChampSim(w io.Writer, src Source, maxInstr uint64) (instructions, branches uint64, err error) {
	return trace.ExportChampSim(w, src, maxInstr)
}

// Experiments ------------------------------------------------------------------

// ExperimentScale bounds the experiment harness's simulation effort.
type ExperimentScale = experiments.Scale

// ExperimentResult is one reproduced table or figure.
type ExperimentResult = experiments.Result

// ExperimentIDs lists every reproducible paper artifact.
func ExperimentIDs() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's one-line description.
func DescribeExperiment(id string) (string, bool) { return experiments.Describe(id) }

// RunExperiment reproduces one paper artifact.
func RunExperiment(id string, sc ExperimentScale) (*ExperimentResult, error) {
	return experiments.Run(id, sc)
}

// DefaultExperimentScale runs all 14 workloads at the scaled-down default
// instruction budget.
func DefaultExperimentScale() ExperimentScale { return experiments.DefaultScale() }

// QuickExperimentScale runs a four-workload subset at reduced budgets.
func QuickExperimentScale() ExperimentScale { return experiments.QuickScale() }

// Table is the plain-text table type experiments render into.
type Table = stats.Table

// BarChart renders labelled values as a horizontal ASCII bar chart.
type BarChart = stats.BarChart

// NewBarChart returns an empty chart with the given bar width.
func NewBarChart(title string, width int) *BarChart { return stats.NewBarChart(title, width) }

// VerifyExperiment checks a reproduced artifact against its registered
// paper-trend assertions (orderings and signs the reproduction must
// preserve); it returns the violations, empty when all trends hold.
func VerifyExperiment(res *ExperimentResult) []string { return experiments.Verify(res) }

// HasTrendCheck reports whether an experiment carries trend assertions.
func HasTrendCheck(id string) bool { return experiments.HasTrendCheck(id) }

// Front-end target substrate -------------------------------------------------

// BTBConfig shapes a branch target buffer (Table II: 16K entries, 8-way).
type BTBConfig = btb.Config

// BTB is a set-associative branch target buffer.
type BTB = btb.BTB

// ITTAGE is an indirect-target predictor with geometric history lengths.
type ITTAGE = btb.ITTAGE

// FrontEndStats aggregates a target-prediction pass.
type FrontEndStats = btb.FrontEndStats

// DefaultBTB returns the Table II BTB configuration.
func DefaultBTB() BTBConfig { return btb.DefaultConfig() }

// NewBTB builds a branch target buffer.
func NewBTB(cfg BTBConfig) (*BTB, error) { return btb.New(cfg) }

// NewITTAGE builds the indirect-target predictor (nil lens = defaults).
func NewITTAGE(lens []int) *ITTAGE { return btb.NewITTAGE(lens) }

// RunFrontEnd drives the BTB and ITTAGE over a branch stream.
func RunFrontEnd(src Source, b *BTB, it *ITTAGE, maxInstr uint64) (FrontEndStats, error) {
	return btb.RunFrontEnd(src, b, it, maxInstr)
}
