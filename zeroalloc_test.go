package llbpx_test

// Steady-state allocation bar for the prediction hot path: once a hot-path
// predictor has warmed up and replayed its window once (so every table,
// pattern-buffer slot, and scratch buffer has reached working size),
// further replay must perform zero heap allocations. This is the
// testing.AllocsPerRun twin of BenchmarkHotPath's allocs-per-branch column
// — the benchmark rounds per-op counts down, this test fails on a single
// allocation anywhere in a window.

import (
	"testing"

	"llbpx"
)

// zaStream materializes warmInstr+windowInstr instructions of a workload.
func zaStream(t *testing.T, wl string, warmInstr, windowInstr uint64) (warm, window []llbpx.Branch) {
	t.Helper()
	prof, err := llbpx.WorkloadByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	gen := llbpx.NewGenerator(prog)
	take := func(budget uint64) []llbpx.Branch {
		var out []llbpx.Branch
		for instr := uint64(0); instr < budget; {
			br, ok := gen.Next()
			if !ok {
				break
			}
			instr += br.Instructions()
			out = append(out, br)
		}
		return out
	}
	return take(warmInstr), take(windowInstr)
}

func TestHotPathZeroAlloc(t *testing.T) {
	if slowcheckEnabled {
		t.Skip("slowcheck shadow maps allocate by design")
	}
	workloads := []string{"nodeapp", "whiskey", "tpcc"}
	if testing.Short() {
		workloads = workloads[:1]
	}
	for _, predName := range []string{"tsl-64k", "llbp", "llbp-x", "bullseye", "tournament"} {
		for _, wlName := range workloads {
			t.Run(predName+"/"+wlName, func(t *testing.T) {
				t.Parallel()
				warm, window := zaStream(t, wlName, 400_000, 100_000)
				p, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				drive := func(branches []llbpx.Branch) {
					for _, br := range branches {
						if br.Kind.Conditional() {
							p.Update(br, p.Predict(br.PC))
						} else {
							p.TrackUnconditional(br)
						}
					}
				}
				drive(warm)
				// Two settling replays: the first lets remaining cold
				// structures (prefetch buffers, scratch) reach working size,
				// the second confirms the window's churn pattern is stable.
				drive(window)
				drive(window)
				if avg := testing.AllocsPerRun(5, func() { drive(window) }); avg != 0 {
					t.Errorf("steady-state window replay allocated %.2f times per run, want 0", avg)
				}
			})
		}
	}
}
