package llbpx_test

// Benchmark harness: one benchmark per paper table/figure (each runs the
// corresponding experiment at the quick scale and reports its headline
// metric), plus micro-benchmarks for the performance-critical components.
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale reproductions are driven through cmd/experiments instead.

import (
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"llbpx"
)

// benchScale is the reduced effort benchmarks run at.
func benchScale() llbpx.ExperimentScale {
	sc := llbpx.QuickExperimentScale()
	sc.Workloads = []string{"nodeapp", "whiskey"}
	sc.WarmupInstr = 400_000
	sc.MeasureInstr = 600_000
	return sc
}

// reportSummaryRow parses the table's final (average/geomean) row and
// reports its numeric cells as benchmark metrics.
func reportSummaryRow(b *testing.B, res *llbpx.ExperimentResult, unit string) {
	b.Helper()
	if res.Table.NumRows() == 0 {
		return
	}
	row := res.Table.Row(res.Table.NumRows() - 1)
	headers := res.Table.Headers
	for i := 1; i < len(row) && i < len(headers); i++ {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			continue
		}
		name := strings.ReplaceAll(headers[i], " ", "-") + "-" + unit
		b.ReportMetric(v, name)
	}
}

func benchExperiment(b *testing.B, id, unit string) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := llbpx.RunExperiment(id, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSummaryRow(b, res, unit)
		}
	}
}

// Paper artifacts ----------------------------------------------------------

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1", "mpki") }
func BenchmarkFig1(b *testing.B)      { benchExperiment(b, "fig1", "pct") }
func BenchmarkFig4(b *testing.B)      { benchExperiment(b, "fig4", "norm") }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5", "pct") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6", "val") }
func BenchmarkFig7(b *testing.B)      { benchExperiment(b, "fig7", "bits") }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8", "pct") }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9", "ratio") }
func BenchmarkFig12(b *testing.B)     { benchExperiment(b, "fig12", "pct") }
func BenchmarkFig13(b *testing.B)     { benchExperiment(b, "fig13", "speedup") }
func BenchmarkFig14a(b *testing.B)    { benchExperiment(b, "fig14a", "pct") }
func BenchmarkFig14b(b *testing.B)    { benchExperiment(b, "fig14b", "speedup") }
func BenchmarkFig15a(b *testing.B)    { benchExperiment(b, "fig15a", "bits-per-instr") }
func BenchmarkFig15b(b *testing.B)    { benchExperiment(b, "fig15b", "rel") }
func BenchmarkFig16a(b *testing.B)    { benchExperiment(b, "fig16a", "pct") }
func BenchmarkFig16b(b *testing.B)    { benchExperiment(b, "fig16b", "pct") }
func BenchmarkBreakdown(b *testing.B) { benchExperiment(b, "breakdown", "pct") }
func BenchmarkSensHth(b *testing.B)   { benchExperiment(b, "sens-hth", "pct") }
func BenchmarkSensCTT(b *testing.B)   { benchExperiment(b, "sens-ctt", "pct") }

// Ablation benches for the design choices DESIGN.md calls out.
func BenchmarkSweepW(b *testing.B)   { benchExperiment(b, "sweep-w", "pct") }
func BenchmarkAdapt(b *testing.B)    { benchExperiment(b, "adapt", "mpki") }
func BenchmarkSmallTSL(b *testing.B) { benchExperiment(b, "small-tsl", "speedup") }
func BenchmarkSweepD(b *testing.B)   { benchExperiment(b, "sweep-d", "pct") }
func BenchmarkAblX(b *testing.B)     { benchExperiment(b, "abl-x", "pct") }

// Micro-benchmarks -----------------------------------------------------------

// benchPredictor measures end-to-end predict+update throughput over a
// prebuilt branch stream, reporting MPKI alongside.
func benchPredictor(b *testing.B, build func() (llbpx.Predictor, error)) {
	b.Helper()
	prof, err := llbpx.WorkloadByName("nodeapp")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	gen := llbpx.NewGenerator(prog)
	branches := make([]llbpx.Branch, 200_000)
	for i := range branches {
		branches[i], _ = gen.Next()
	}
	p, err := build()
	if err != nil {
		b.Fatal(err)
	}
	var mis, cond uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := branches[i%len(branches)]
		if br.Kind.Conditional() {
			pred := p.Predict(br.PC)
			if pred.Taken != br.Taken {
				mis++
			}
			cond++
			p.Update(br, pred)
		} else {
			p.TrackUnconditional(br)
		}
	}
	if cond > 0 {
		b.ReportMetric(float64(mis)/float64(cond)*100, "miss-%")
	}
}

func BenchmarkPredictorTSL64K(b *testing.B) {
	benchPredictor(b, func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL64K()) })
}

func BenchmarkPredictorTSL512K(b *testing.B) {
	benchPredictor(b, func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL512K()) })
}

func BenchmarkPredictorLLBP(b *testing.B) {
	benchPredictor(b, func() (llbpx.Predictor, error) { return llbpx.NewLLBP(llbpx.LLBPDefault()) })
}

func BenchmarkPredictorLLBPX(b *testing.B) {
	benchPredictor(b, func() (llbpx.Predictor, error) { return llbpx.NewLLBPX(llbpx.LLBPXDefault()) })
}

func BenchmarkWorkloadGenerator(b *testing.B) {
	prof, err := llbpx.WorkloadByName("whiskey")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	gen := llbpx.NewGenerator(prog)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		br, _ := gen.Next()
		instr += br.Instructions()
	}
	b.ReportMetric(float64(instr)/float64(b.N), "instr-per-branch")
}

func BenchmarkTraceEncode(b *testing.B) {
	prof, _ := llbpx.WorkloadByName("tpcc")
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	gen := llbpx.NewGenerator(prog)
	branches := make([]llbpx.Branch, 100_000)
	for i := range branches {
		branches[i], _ = gen.Next()
	}
	var buf discard
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := llbpx.NewTraceWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for _, br := range branches {
			if err := w.Write(br); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(branches)))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Hot path --------------------------------------------------------------------

// hotPathPredictors and hotPathWorkloads span the steady-state
// predict/update matrix BENCH_hotpath.json records.
var (
	hotPathPredictors = []string{"tsl-64k", "llbp", "llbp-x"}
	hotPathWorkloads  = []string{"nodeapp", "whiskey", "tpcc"}
)

// hotPathStream materializes ~warm+window instructions of a workload.
func hotPathStream(b *testing.B, wl string, warmInstr, windowInstr uint64) (warm, window []llbpx.Branch) {
	b.Helper()
	prof, err := llbpx.WorkloadByName(wl)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	gen := llbpx.NewGenerator(prog)
	take := func(budget uint64) []llbpx.Branch {
		var out []llbpx.Branch
		for instr := uint64(0); instr < budget; {
			br, ok := gen.Next()
			if !ok {
				break
			}
			instr += br.Instructions()
			out = append(out, br)
		}
		return out
	}
	return take(warmInstr), take(windowInstr)
}

// BenchmarkHotPath measures steady-state per-branch predict/update cost:
// the predictor is warmed over ~400k instructions, then a fixed ~100k
// instruction window is replayed, so table/context state saturates and the
// loop exercises exactly the serving-time hot path. ns/op is ns per branch;
// run with -benchmem to see allocs per branch (0 in steady state). Set
// LLBPX_BENCH_JSON to merge each cell's numbers into a JSON file (the
// BENCH_hotpath.json recorder).
func BenchmarkHotPath(b *testing.B) {
	for _, predName := range hotPathPredictors {
		for _, wlName := range hotPathWorkloads {
			b.Run(predName+"/"+wlName, func(b *testing.B) {
				warm, window := hotPathStream(b, wlName, 400_000, 100_000)
				p, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					b.Fatal(err)
				}
				drive := func(branches []llbpx.Branch) {
					for _, br := range branches {
						if br.Kind.Conditional() {
							p.Update(br, p.Predict(br.PC))
						} else {
							p.TrackUnconditional(br)
						}
					}
				}
				drive(warm)
				drive(window) // one replay pre-timer: steady-state allocations settle
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					br := window[i%len(window)]
					if br.Kind.Conditional() {
						p.Update(br, p.Predict(br.PC))
					} else {
						p.TrackUnconditional(br)
					}
				}
				b.StopTimer()
				recordHotPathCell(b, predName, wlName)
			})
		}
	}
}

// recordHotPathCell merges one benchmark cell into the JSON file named by
// LLBPX_BENCH_JSON (no-op otherwise). Merging lets a single `go test
// -bench HotPath` run build up the full matrix incrementally.
func recordHotPathCell(b *testing.B, predName, wlName string) {
	b.Helper()
	path := os.Getenv("LLBPX_BENCH_JSON")
	if path == "" || b.N < 1000 {
		return // ignore warmup/short calibration rounds
	}
	cells := map[string]map[string]float64{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &cells); err != nil {
			b.Fatalf("corrupt %s: %v", path, err)
		}
	}
	nsPerBranch := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	cells[predName+"/"+wlName] = map[string]float64{
		"ns_per_branch": nsPerBranch,
		"branches":      float64(b.N),
	}
	data, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// Observability overhead ----------------------------------------------------

// BenchmarkObsOverhead measures what the simulator's observer hook costs
// on the hot path: "disabled" runs with Observer nil (the production
// default — one pointer test per branch), "idle" with a registered no-op
// observer (the attached-but-quiet worst case for instrumented runs).
// ns/op is ns per simulated instruction; run with -benchmem — both
// configurations must report 0 allocs/op, which CI enforces via
// TestObserverDisabledPathAllocFree.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, obs llbpx.SimObserver) {
		b.Helper()
		prof, err := llbpx.WorkloadByName("nodeapp")
		if err != nil {
			b.Fatal(err)
		}
		prog, err := llbpx.BuildProgram(prof)
		if err != nil {
			b.Fatal(err)
		}
		gen := llbpx.NewGenerator(prog)
		p, err := llbpx.NewPredictorByName("tsl-64k")
		if err != nil {
			b.Fatal(err)
		}
		// Warm tables and scratch so the timed run is steady-state.
		if _, err := llbpx.Simulate(p, gen, llbpx.SimOptions{MeasureInstr: 400_000, Observer: obs}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if _, err := llbpx.Simulate(p, gen, llbpx.SimOptions{MeasureInstr: uint64(b.N), Observer: obs}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("idle", func(b *testing.B) { run(b, &idleObserver{}) })
}

// Warm start ---------------------------------------------------------------

// warmStartMPKI drives p over branches and returns MPKI over the measured
// span.
func warmStartMPKI(p llbpx.Predictor, branches []llbpx.Branch) float64 {
	var mis, instr uint64
	for _, br := range branches {
		if br.Kind.Conditional() {
			pred := p.Predict(br.PC)
			if pred.Taken != br.Taken {
				mis++
			}
			p.Update(br, pred)
		} else {
			p.TrackUnconditional(br)
		}
		instr += br.Instructions()
	}
	if instr == 0 {
		return 0
	}
	return float64(mis) / float64(instr) * 1000
}

// BenchmarkWarmStart measures what checkpointing buys at deployment time
// for LLBP-X: the timed loop is one full snapshot restore (decode +
// reconstruct), and the reported metrics compare a cold predictor's MPKI
// over its first ~1M branches-worth of instructions against a
// snapshot-restored one's over the same stream. Set LLBPX_BENCH_JSON to a
// path to also record the data point as JSON (see BENCH_warmstart.json).
func BenchmarkWarmStart(b *testing.B) {
	const (
		warmInstr  = 400_000
		firstInstr = 1_000_000
	)
	prof, err := llbpx.WorkloadByName("nodeapp")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		b.Fatal(err)
	}
	gen := llbpx.NewGenerator(prog)
	take := func(budget uint64) []llbpx.Branch {
		var out []llbpx.Branch
		for instr := uint64(0); instr < budget; {
			br, ok := gen.Next()
			if !ok {
				break
			}
			instr += br.Instructions()
			out = append(out, br)
		}
		return out
	}
	warm, first := take(warmInstr), take(firstInstr)

	// Train once, snapshot once.
	trained, err := llbpx.NewPredictorByName("llbp-x")
	if err != nil {
		b.Fatal(err)
	}
	warmStartMPKI(trained, warm)
	var buf bytes.Buffer
	if err := llbpx.SavePredictorState(&buf, "llbp-x", trained); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	// Cold baseline: fresh predictor straight into the measured span.
	coldStart := time.Now()
	cold, err := llbpx.NewPredictorByName("llbp-x")
	if err != nil {
		b.Fatal(err)
	}
	coldBuildNs := float64(time.Since(coldStart).Nanoseconds())
	coldMPKI := warmStartMPKI(cold, first)

	// Warm path: restore from the snapshot, then the same measured span.
	restored, _, err := llbpx.LoadPredictorState(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	warmMPKI := warmStartMPKI(restored, first)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := llbpx.LoadPredictorState(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(int64(len(data)))
	b.ReportMetric(coldBuildNs, "cold-build-ns")
	b.ReportMetric(coldMPKI, "cold-mpki-1m")
	b.ReportMetric(warmMPKI, "warm-mpki-1m")

	if path := os.Getenv("LLBPX_BENCH_JSON"); path != "" {
		point := map[string]any{
			"benchmark":      "WarmStart",
			"predictor":      "llbp-x",
			"workload":       "nodeapp",
			"warm_instr":     warmInstr,
			"first_instr":    firstInstr,
			"snapshot_bytes": len(data),
			"cold_mpki_1m":   coldMPKI,
			"warm_mpki_1m":   warmMPKI,
		}
		enc, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
