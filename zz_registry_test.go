package llbpx_test

// Facade-level predictor-registry extension tests. The zz_ filename is
// load-bearing: tests run in file order, and earlier suites
// (fingerprint_test.go, snapshot_roundtrip_test.go) iterate
// llbpx.PredictorNames() expecting only builtin entries — so the custom
// registration below must run after them.

import (
	"sort"
	"testing"

	"llbpx"
)

// alternating is a trivially-deterministic custom predictor registered
// through the public facade.
type alternating struct{ flip bool }

func (a *alternating) Name() string { return "zz-alternating" }
func (a *alternating) Predict(pc uint64) llbpx.Prediction {
	a.flip = !a.flip
	return llbpx.Prediction{Taken: a.flip}
}
func (a *alternating) Update(b llbpx.Branch, pred llbpx.Prediction) {}
func (a *alternating) TrackUnconditional(b llbpx.Branch)            {}

func TestRegisterPredictorFacade(t *testing.T) {
	const name = "zz-alternating"
	if err := llbpx.RegisterPredictor(name, "test-only alternating stub",
		func() (llbpx.Predictor, error) { return &alternating{}, nil }); err != nil {
		t.Fatal(err)
	}

	// The registered name joins the shared vocabulary, sorted.
	names := llbpx.PredictorNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("PredictorNames not sorted after registration: %v", names)
	}
	found := false
	for _, n := range names {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("%q missing from PredictorNames: %v", name, names)
	}
	if info, ok := llbpx.DescribePredictor(name); !ok || info.Description != "test-only alternating stub" {
		t.Fatalf("DescribePredictor = %+v, %v", info, ok)
	}
	infoFound := false
	for _, info := range llbpx.Predictors() {
		if info.Name == name && info.Description != "" {
			infoFound = true
		}
	}
	if !infoFound {
		t.Fatal("Predictors() does not list the registered entry")
	}

	// The factory is live: build and simulate through the normal path.
	p, err := llbpx.NewPredictorByName(name)
	if err != nil {
		t.Fatal(err)
	}
	branches := make([]llbpx.Branch, 100)
	for i := range branches {
		branches[i] = llbpx.Branch{PC: uint64(i), Kind: llbpx.CondDirect, Taken: i%2 == 0, InstrGap: 4}
	}
	res, err := llbpx.Simulate(p, llbpx.NewSliceSource(branches), llbpx.SimOptions{MeasureInstr: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictor != name || res.Measured.CondBranches == 0 {
		t.Fatalf("registered predictor did not simulate: %+v", res)
	}

	// Registration is strict: duplicates, empty names, and nil factories
	// are rejected rather than overwriting.
	if err := llbpx.RegisterPredictor(name, "shadow attempt",
		func() (llbpx.Predictor, error) { return &alternating{}, nil }); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := llbpx.RegisterPredictor("", "anonymous",
		func() (llbpx.Predictor, error) { return &alternating{}, nil }); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := llbpx.RegisterPredictor("zz-nil-factory", "no factory", nil); err == nil {
		t.Fatal("nil factory must fail")
	}
}
