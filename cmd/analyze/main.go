// Command analyze characterizes a workload's (or trace file's) branch
// stream: dynamic branch mix, static working set, instruction gap, and
// context locality at the paper's three context depths — the evidence
// Sections II-III of the paper build on.
//
// Usage:
//
//	analyze -workload nodeapp
//	analyze -trace run.trc -instructions 2000000
package main

import (
	"flag"
	"fmt"
	"os"

	"llbpx"
	"llbpx/internal/analyze"
)

func main() {
	var (
		workloadName = flag.String("workload", "nodeapp", "preset workload name")
		tracePath    = flag.String("trace", "", "binary trace file to characterize instead")
		instructions = flag.Uint64("instructions", 5_000_000, "instructions to characterize")
	)
	flag.Parse()

	var (
		src   llbpx.Source
		title string
	)
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := llbpx.NewTraceReader(f)
		if err != nil {
			fatal(err)
		}
		src, title = r, *tracePath
	} else {
		prof, err := llbpx.WorkloadByName(*workloadName)
		if err != nil {
			fatal(err)
		}
		prog, err := llbpx.BuildProgram(prof)
		if err != nil {
			fatal(err)
		}
		src, title = llbpx.NewGenerator(prog), prof.Name
	}

	opt := analyze.DefaultOptions()
	opt.MaxInstructions = *instructions
	rep, err := analyze.Run(src, opt)
	if err != nil {
		fatal(err)
	}
	if err := rep.Table("characterization: " + title).Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
