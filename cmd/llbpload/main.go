// Command llbpload drives an llbpd daemon with the synthetic server
// workloads: K concurrent sessions stream branch batches over the JSON
// API (-proto=http) or the binary streaming protocol (-proto=binary),
// then every session's server-side MPKI is checked against a local
// sim.Run of the identical stream. It is the repository's end-to-end
// client/server benchmark: it prints achieved branches/sec, per-workload
// server-vs-local MPKI agreement, and the daemon's own /v1/stats
// counters. The MPKI cross-check is protocol-independent — both paths
// must land the exact statistics of the local replay.
//
// Usage:
//
//	llbpload -addr http://localhost:8713
//	llbpload -proto binary -wire-addr localhost:8714
//	llbpload -workloads nodeapp,kafka,wikipedia,whiskey -sessions 8 -instr 200000
//	llbpload -predictor tsl-64k -batch 8192 -skip-local
//	llbpload -resume -resume-wait 3s
//	llbpload -fingerprint workload -tolerance 0
//	llbpload -gateway -addr http://localhost:8712 -tolerance 0
//
// With -gateway the target is an llbpgw routing gateway instead of a
// single llbpd. Nothing about the session traffic changes — the gateway
// mirrors llbpd's APIs on both protocols — but the final stats probe
// reads the gateway's routing counters (routed batches, migrations,
// reroutes) instead of llbpd's /v1/stats, and the MPKI cross-check now
// spans however many backends the cluster routed (and live-migrated)
// each session across. At -tolerance 0 it is the cluster's bit-exactness
// drill.
//
// With -resume (the daemon must run with -snapshot-dir and a short -ttl),
// each session pauses mid-stream until it crosses the idle TTL, letting
// the janitor evict it to disk, then keeps streaming: the daemon restores
// the predictor transparently and the MPKI cross-check still holds
// exactly, proving evict-to-disk round-trips lose no learned state.
//
// With -fingerprint workload every session declares its workload name as
// a fingerprint on each predict. Against a daemon running -store-budget
// (and optionally -store-share), that turns the run into the shared
// pattern store's budget drill: sessions spill and resume under memory
// pressure while the -tolerance 0 cross-check holds bit-exactly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"llbpx"
	"llbpx/internal/cluster"
	"llbpx/internal/serve"
	"llbpx/internal/wire"
)

// sessionResult is one streamed session's outcome.
type sessionResult struct {
	id       string
	workload string
	branches uint64
	server   serve.SessionStats
	restored bool // the server revived this session from a checkpoint
	err      error
}

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8713", "llbpd base URL (JSON API; also used for the final /v1/stats probe)")
		proto      = flag.String("proto", "http", `session transport: "http" (JSON API) or "binary" (internal/wire frames)`)
		wireAddr   = flag.String("wire-addr", "localhost:8714", "llbpd binary-protocol host:port for -proto=binary")
		workloads  = flag.String("workloads", "all", "comma-separated workloads, or 'all' (14 presets)")
		sessions   = flag.Int("sessions", 8, "concurrent sessions (assigned workloads round-robin)")
		predictor  = flag.String("predictor", "llbp-x", "predictor for every session")
		instr      = flag.Uint64("instr", 500_000, "instructions streamed per session")
		batchSize  = flag.Int("batch", 4096, "branches per batch")
		skipLocal  = flag.Bool("skip-local", false, "skip the local sim.Run MPKI cross-check")
		tolerance  = flag.Float64("tolerance", 0.01, "max |server-local|/local MPKI disagreement")
		resume     = flag.Bool("resume", false, "pause each session past the server's idle TTL mid-stream to exercise evict-to-disk + restore")
		resumeWait = flag.Duration("resume-wait", 3*time.Second, "how long a -resume pause lasts (set > the daemon's -ttl)")
		retries    = flag.Int("retries", 0, "max attempts per request: retry shed (429) and draining (503) batches with exponential backoff (0 disables)")
		gateway    = flag.Bool("gateway", false, "the target is an llbpgw routing gateway: probe cluster routing stats instead of llbpd server stats")
		fngprint   = flag.String("fingerprint", "", `workload fingerprint declared on every predict: "workload" stamps each session's workload name, any other value is sent verbatim (empty disables; ignored by -proto=binary, which has no fingerprint field)`)
	)
	flag.Parse()
	if *sessions < 1 || *batchSize < 1 || *instr == 0 {
		fatal(fmt.Errorf("need -sessions >= 1, -batch >= 1, -instr > 0"))
	}
	if *proto != "http" && *proto != "binary" {
		fatal(fmt.Errorf(`-proto must be "http" or "binary", got %q`, *proto))
	}

	names := llbpx.WorkloadNames()
	if *workloads != "all" {
		names = strings.Split(*workloads, ",")
	}
	for _, n := range names {
		if _, err := llbpx.WorkloadByName(n); err != nil {
			fatal(err)
		}
	}

	// The HTTP client is always built: it carries the load for -proto=http
	// and serves the final /v1/stats probe either way (the daemon fronts
	// both protocols over the same machinery).
	hc := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: *sessions},
		Timeout:   2 * time.Minute,
	}
	client := serve.NewClient(*addr, hc)
	var wc *wire.Client
	if *proto == "binary" {
		wc = wire.NewClient(*wireAddr)
		defer wc.Close()
		if *fngprint != "" {
			fmt.Fprintln(os.Stderr, "llbpload: -fingerprint ignored: the binary protocol has no fingerprint field")
		}
	}
	if *retries > 0 {
		// The MPKI cross-check below still applies verbatim: retried
		// batches must not double-apply, so a disagreement after retries
		// exits non-zero exactly like one without them. On the binary path
		// the batch-number contract extends that guarantee to resends of
		// batches whose response was lost.
		client.WithRetry(serve.RetryPolicy{MaxAttempts: *retries})
		if wc != nil {
			wc.WithRetry(serve.RetryPolicy{MaxAttempts: *retries})
		}
	}
	// Client.Fingerprint is client-wide, so "-fingerprint workload" needs
	// one client per distinct fingerprint; they all share hc's connection
	// pool, and the plain probe client above stays fingerprint-free.
	var (
		fpMu      sync.Mutex
		fpClients = map[string]*serve.Client{}
	)
	clientFor := func(wl string) *serve.Client {
		fp := *fngprint
		if fp == "" {
			return client
		}
		if fp == "workload" {
			fp = wl
		}
		fpMu.Lock()
		defer fpMu.Unlock()
		c, ok := fpClients[fp]
		if !ok {
			c = serve.NewClient(*addr, hc)
			c.Fingerprint = fp
			if *retries > 0 {
				c.WithRetry(serve.RetryPolicy{MaxAttempts: *retries})
			}
			fpClients[fp] = c
		}
		return c
	}
	newSession := func(id, wl string) batchSession {
		if wc != nil {
			return newWireSession(wc, id, *predictor)
		}
		return &httpSession{client: clientFor(wl), id: id, predictor: *predictor}
	}
	// SIGINT/SIGTERM cancels every in-flight request, pause, and local
	// verification run; sessions report context.Canceled and the run exits
	// through the normal failure path instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Load phase: K sessions stream concurrently.
	target := *addr
	if wc != nil {
		target = *wireAddr + " (binary)"
	}
	fmt.Printf("llbpload: %d sessions x %d instr over %d workloads against %s (predictor %s)\n",
		*sessions, *instr, len(names), target, *predictor)
	results := make([]sessionResult, *sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl := names[i%len(names)]
			id := fmt.Sprintf("load-%s-%d", wl, i)
			pauseAt := uint64(0)
			if *resume {
				pauseAt = *instr / 2
			}
			results[i] = streamSession(ctx, newSession(id, wl), id, wl, *instr, *batchSize, pauseAt, *resumeWait)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var totalBranches uint64
	failed := 0
	for _, r := range results {
		if r.err != nil {
			// Surface the server's stable error code when the failure came
			// back in the API envelope (HTTP) or as a typed NACK (binary) —
			// both carry the same code vocabulary.
			var apiErr *serve.APIError
			var nackErr *wire.NackError
			switch {
			case errors.As(r.err, &apiErr):
				fmt.Fprintf(os.Stderr, "llbpload: session %s: [%s] %v\n", r.id, apiErr.Code, r.err)
			case errors.As(r.err, &nackErr):
				fmt.Fprintf(os.Stderr, "llbpload: session %s: [%s] %v\n", r.id, nackErr.Code, r.err)
			default:
				fmt.Fprintf(os.Stderr, "llbpload: session %s: %v\n", r.id, r.err)
			}
			failed++
			continue
		}
		totalBranches += r.branches
	}
	if failed == *sessions {
		fatal(fmt.Errorf("all %d sessions failed", failed))
	}
	fmt.Printf("llbpload: streamed %d branches in %v — %.0f branches/s achieved\n",
		totalBranches, elapsed.Round(time.Millisecond), float64(totalBranches)/elapsed.Seconds())
	if *retries > 0 {
		if wc != nil {
			fmt.Printf("llbpload: %d retries performed, %d shed NACKs absorbed, %d reconnects\n",
				wc.Retries(), wc.ShedSeen(), wc.Reconnects())
		} else {
			nretries, nshed := client.Retries(), client.ShedSeen()
			for _, c := range fpClients {
				nretries += c.Retries()
				nshed += c.ShedSeen()
			}
			fmt.Printf("llbpload: %d retries performed, %d 429-shed responses absorbed\n",
				nretries, nshed)
		}
	}

	// Verification phase: local replay of each workload's stream.
	local := map[string]float64{}
	if !*skipLocal {
		local = localMPKI(ctx, names, *predictor, *instr)
	}
	tbl := llbpx.Table{Title: "server vs local MPKI", Headers: []string{"session", "workload", "branches", "server-MPKI", "local-MPKI", "delta%"}}
	mismatches := 0
	for _, r := range results {
		if r.err != nil {
			continue
		}
		if *skipLocal {
			tbl.AddRow(r.id, r.workload, fmt.Sprint(r.branches), r.server.MPKI, "-", "-")
			continue
		}
		want := local[r.workload]
		delta := 0.0
		if want > 0 {
			delta = (r.server.MPKI - want) / want
		}
		if delta < -*tolerance || delta > *tolerance {
			mismatches++
		}
		tbl.AddRow(r.id, r.workload, fmt.Sprint(r.branches), r.server.MPKI, want, 100*delta)
	}
	fmt.Println(tbl.String())

	var serverRestores uint64
	if *gateway {
		// A gateway serves routing statistics, not llbpd's server snapshot.
		if cs, err := clusterStats(ctx, *addr); err == nil {
			fmt.Printf("gateway: routed %d batches over %d backends, %d migrations (%d failed), %d reroutes, %d cursor resyncs, %d forward errors\n",
				cs.RoutedBatches, len(cs.Backends), cs.Migrations, cs.MigrationErrors, cs.Reroutes, cs.CursorResyncs, cs.ForwardErrors)
		}
	} else if snap, err := client.ServerStats(ctx); err == nil {
		serverRestores = snap.SnapshotRestores
		fmt.Printf("server: %d batches, %d branches, %.0f branches/s lifetime, "+
			"batch latency p50=%.0fus p99=%.0fus, sessions live=%d evicted=%d\n",
			snap.Batches, snap.Branches, snap.BranchesPerSec,
			snap.LatencyP50Us, snap.LatencyP99Us, snap.SessionsLive, snap.SessionsEvicted)
		if *resume {
			fmt.Printf("server: snapshots saved=%d restored=%d write-errors=%d\n",
				snap.SnapshotSaves, snap.SnapshotRestores, snap.SnapshotSaveErrors)
		}
	}
	restored := 0
	for _, r := range results {
		if r.err == nil && r.restored {
			restored++
		}
	}
	if *resume {
		fmt.Printf("llbpload: %d/%d sessions restored from checkpoint after the pause\n",
			restored, *sessions-failed)
	}

	switch {
	case failed > 0:
		fatal(fmt.Errorf("%d sessions failed", failed))
	case mismatches > 0:
		fatal(fmt.Errorf("%d sessions disagree with local MPKI beyond %.2f%%", mismatches, 100**tolerance))
	case *resume && restored == 0 && serverRestores == 0:
		// The client-side flag alone is not authoritative on the binary
		// path: a restore acknowledgement lost to a dying connection is
		// answered as a duplicate on resend, which legitimately carries no
		// restore flag. The server's own restore counter breaks the tie.
		fatal(fmt.Errorf("-resume: no session was restored from a checkpoint — run llbpd with -snapshot-dir and a -ttl shorter than %v", *resumeWait))
	default:
		if !*skipLocal {
			fmt.Println("llbpload: all sessions agree with local simulation")
		}
	}
}

// batchSession abstracts one server session's transport: the JSON API and
// the binary protocol implement it against the same daemon machinery, so
// streamSession (and the MPKI cross-check downstream) is protocol-blind.
type batchSession interface {
	// flush sends one batch and returns the latest server-side stats the
	// transport has seen. On pipelined transports those may trail the
	// batches sent; close returns the authoritative finals.
	flush(ctx context.Context, batch []llbpx.Branch) (serve.SessionStats, error)
	// close closes the session and returns its final stats.
	close(ctx context.Context) (serve.SessionStats, error)
	// restored reports whether the server revived this session from a
	// checkpoint at any point.
	restored() bool
}

// httpSession is one session over the JSON API.
type httpSession struct {
	client        *serve.Client
	id, predictor string
	revived       bool
}

func (s *httpSession) flush(ctx context.Context, batch []llbpx.Branch) (serve.SessionStats, error) {
	resp, err := s.client.Predict(ctx, s.id, s.predictor, batch)
	if err != nil {
		return serve.SessionStats{}, err
	}
	if resp.Restored {
		s.revived = true
	}
	return resp.Stats, nil
}

func (s *httpSession) close(ctx context.Context) (serve.SessionStats, error) {
	fin, err := s.client.CloseSession(ctx, s.id)
	if err != nil {
		return serve.SessionStats{}, err
	}
	return fin.Stats, nil
}

func (s *httpSession) restored() bool { return s.revived }

// wireSession is one session over the binary protocol: a pipelined
// stream with a window of batches in flight, resent across connection
// loss under the sequencing contract.
type wireSession struct {
	st      *wire.Stream
	revived bool
}

func newWireSession(c *wire.Client, id, predictor string) *wireSession {
	s := &wireSession{}
	s.st = c.Stream(id, predictor, wire.StreamConfig{Window: 8, OnBatch: func(ok *wire.PredictOK) {
		if ok.Flags&wire.FlagRestored != 0 {
			s.revived = true
		}
	}})
	return s
}

func (s *wireSession) flush(ctx context.Context, batch []llbpx.Branch) (serve.SessionStats, error) {
	if err := s.st.Send(ctx, batch); err != nil {
		return serve.SessionStats{}, err
	}
	return wireSessionStats(s.st.Stats()), nil
}

func (s *wireSession) close(ctx context.Context) (serve.SessionStats, error) {
	_, fin, err := s.st.Close(ctx)
	if err != nil {
		return serve.SessionStats{}, err
	}
	return wireSessionStats(fin), nil
}

func (s *wireSession) restored() bool { return s.revived }

// wireSessionStats converts the binary protocol's raw counters into the
// JSON API's stats shape, deriving MPKI and accuracy the same way the
// server does.
func wireSessionStats(ws wire.WireStats) serve.SessionStats {
	st := serve.SessionStats{
		Instructions:  ws.Instructions,
		CondBranches:  ws.CondBranches,
		Mispredicts:   ws.Mispredicts,
		UncondCount:   ws.UncondCount,
		SecondLevelOK: ws.SecondLevelOK,
		Batches:       ws.Batches,
		Accuracy:      1,
	}
	if ws.Instructions > 0 {
		st.MPKI = float64(ws.Mispredicts) / float64(ws.Instructions) * 1000
	}
	if ws.CondBranches > 0 {
		st.Accuracy = 1 - float64(ws.Mispredicts)/float64(ws.CondBranches)
	}
	return st
}

// streamSession streams one workload's branch stream to one server
// session in batches and closes the session, returning its final stats.
// A non-zero pauseAt sleeps resumeWait once after crossing that many
// instructions — long enough, with a short server TTL, for the janitor to
// checkpoint the session to disk so the next batch exercises restore.
func streamSession(ctx context.Context, sess batchSession, id, workloadName string, instrBudget uint64, batchSize int, pauseAt uint64, resumeWait time.Duration) (res sessionResult) {
	res = sessionResult{id: id, workload: workloadName}
	// On a pipelined transport the restore acknowledgement may only be
	// observed while draining the window at close, so sample last.
	defer func() { res.restored = sess.restored() }()
	src, err := workloadSource(workloadName)
	if err != nil {
		res.err = err
		return res
	}
	batch := make([]llbpx.Branch, 0, batchSize)
	var instr uint64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		st, err := sess.flush(ctx, batch)
		if err != nil {
			return err
		}
		res.server = st
		res.branches += uint64(len(batch))
		batch = batch[:0]
		return nil
	}
	paused := false
	// Mirror sim.Run's stop condition exactly: pull while instr < budget,
	// include the branch that crosses it.
	for instr < instrBudget {
		b, ok := src.Next()
		if !ok {
			break
		}
		instr += b.Instructions()
		batch = append(batch, b)
		if len(batch) == batchSize {
			if res.err = flush(); res.err != nil {
				return res
			}
		}
		if pauseAt > 0 && !paused && instr >= pauseAt {
			// Flush what we have so the server state covers the stream's
			// first half, then go idle past the TTL. The pause aborts
			// immediately on cancellation instead of sleeping through it.
			if res.err = flush(); res.err != nil {
				return res
			}
			paused = true
			select {
			case <-time.After(resumeWait):
			case <-ctx.Done():
				res.err = ctx.Err()
				return res
			}
		}
	}
	if res.err = flush(); res.err != nil {
		return res
	}
	if fin, err := sess.close(ctx); err == nil {
		res.server = fin
	}
	return res
}

// localMPKI replays each workload's identical stream through a local
// simulation (warmup 0, matching the server session's from-scratch stats)
// and returns MPKI per workload. Cancellation abandons the remaining
// verification runs.
func localMPKI(ctx context.Context, names []string, predictor string, instrBudget uint64) map[string]float64 {
	out := make(map[string]float64, len(names))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			src, err := workloadSource(name)
			if err != nil {
				return
			}
			p, err := llbpx.NewPredictorByName(predictor)
			if err != nil {
				return
			}
			res, err := llbpx.SimulateContext(ctx, p, src, llbpx.SimOptions{MeasureInstr: instrBudget})
			if err != nil {
				return
			}
			mu.Lock()
			out[name] = res.MPKI()
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	return out
}

// workloadSource builds a fresh deterministic branch stream for a preset;
// two calls yield identical streams, which the MPKI cross-check relies on.
func workloadSource(name string) (llbpx.Source, error) {
	prof, err := llbpx.WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		return nil, err
	}
	return llbpx.NewGenerator(prog), nil
}

// clusterStats fetches an llbpgw gateway's routing counters from its
// /v1/stats endpoint.
func clusterStats(ctx context.Context, base string) (*cluster.ClusterStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gateway stats: status %d", resp.StatusCode)
	}
	var out cluster.ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llbpload:", err)
	os.Exit(1)
}
