// Command llbpgw is the cluster tier's routing gateway: a stateless
// front that spreads llbpd sessions across N backends and moves them
// between backends live, without losing bit-exactness.
//
// Placement is a weighted consistent-hash ring over session IDs: every
// gateway with the same membership computes the same owner, so gateways
// scale out with no coordination and no persisted state. Downstream the
// gateway speaks the binary wire protocol; upstream it exposes BOTH the
// llbpd HTTP API (same paths, same error envelope) and the binary
// protocol, so existing clients — curl, serve.Client, wire.Stream,
// llbpload — point at the cluster unchanged.
//
// On membership change (join via the admin API, graceful leave, or a
// death verdict from failed probes/forwards) affected sessions migrate
// as drain-checkpoint → transfer → warm-restore over the llbpd admin
// transfer API: the gateway quiesces the session, exports its
// CRC-guarded checkpoint from the old owner, imports it on the new one,
// and resumes the stream there. The exactly-once batch cursor rides the
// checkpoint, so in-flight resends across the move are answered as
// duplicates instead of double-applied. A backend that died without a
// goodbye is routed around; its sessions warm-restore from the shared
// snapshot directory when the backends have one.
//
// Usage:
//
//	llbpgw -addr :8712 -backends 'b1=127.0.0.1:8714,http://127.0.0.1:8713;b2=127.0.0.1:8724,http://127.0.0.1:8723'
//	llbpgw -addr :8712 -wire-addr :8715 -backends ... -vnodes 128
//	llbpgw -addr :8712 -backends ... -inject 'cluster.forward:err=0.05'
//
// Each -backends entry is name=wireAddr,httpURL[,weight]; entries are
// separated by semicolons. Backends can also join and leave at runtime:
//
//	POST   /admin/v1/backends          {"name":"b3","wire_addr":"...","http_url":"..."}
//	DELETE /admin/v1/backends/{name}   graceful leave (live-migrates its sessions first)
//	GET    /admin/v1/backends          membership with health verdicts
//
// The serving API mirrors llbpd (predict/stats/close per session), plus
// GET /v1/stats (routing statistics), /metrics (llbpgw_* families),
// /healthz and /readyz (503 when no backend is live).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"llbpx/internal/cluster"
	"llbpx/internal/faults"
)

// parseBackends parses the -backends spec: semicolon-separated
// name=wireAddr,httpURL[,weight] entries.
func parseBackends(spec string) ([]cluster.Backend, error) {
	var out []cluster.Backend
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, okEq := strings.Cut(entry, "=")
		parts := strings.Split(rest, ",")
		if !okEq || name == "" || len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad backend entry %q (want name=wireAddr,httpURL[,weight])", entry)
		}
		b := cluster.Backend{Name: name, WireAddr: strings.TrimSpace(parts[0]), HTTPURL: strings.TrimSpace(parts[1])}
		if len(parts) == 3 {
			w, err := strconv.Atoi(strings.TrimSpace(parts[2]))
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad weight in backend entry %q", entry)
			}
			b.Weight = w
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends configured (use -backends 'name=wireAddr,httpURL;...')")
	}
	return out, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8712", "HTTP/JSON listen address")
		wireAddr = flag.String("wire-addr", "", "binary-protocol listen address (empty disables)")
		backends = flag.String("backends", "", "initial membership: 'name=wireAddr,httpURL[,weight];...'")
		vnodes   = flag.Int("vnodes", 64, "consistent-hash ring points per weight unit")
		maxBatch = flag.Int("max-batch", 65536, "max branches per batch")

		forwardAttempts  = flag.Int("forward-attempts", 8, "max attempts to route one batch across failures and reroutes")
		forwardTimeout   = flag.Duration("forward-timeout", 10*time.Second, "per-attempt downstream timeout")
		healthEvery      = flag.Duration("health-every", 2*time.Second, "backend liveness probe interval (<0 disables)")
		healthFails      = flag.Int("health-fails", 3, "consecutive failures that declare a backend dead")
		transferAttempts = flag.Int("transfer-attempts", 4, "migration attempts per relocation (each re-exports)")
		replicate        = flag.Bool("replicate", false, "hot-standby session replication: primaries ship checkpoints to the next ring member and a death verdict promotes the standby instead of cold-rerouting")
		replayTail       = flag.Int("replay-tail", 64, "applied batches retained per session for post-promotion replay (must cover the backends' -replica-every)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server.ReadHeaderTimeout")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "http.Server.ReadTimeout")
		writeTimeout      = flag.Duration("write-timeout", 2*time.Minute, "http.Server.WriteTimeout")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server.IdleTimeout")

		injectSpec = flag.String("inject", "", "fault-injection spec for chaos drills, e.g. 'cluster.forward:err=0.05;cluster.transfer:partial=64' (empty disables)")
		injectSeed = flag.Int64("inject-seed", 1, "seed for the fault injector's per-site RNG streams")
	)
	flag.Parse()

	members, err := parseBackends(*backends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llbpgw:", err)
		os.Exit(2)
	}
	inj, err := faults.ParseSpec(*injectSpec, *injectSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llbpgw:", err)
		os.Exit(2)
	}

	g, err := cluster.New(cluster.Config{
		Backends:         members,
		VNodes:           *vnodes,
		MaxBatch:         *maxBatch,
		ForwardAttempts:  *forwardAttempts,
		ForwardTimeout:   *forwardTimeout,
		HealthEvery:      *healthEvery,
		HealthFails:      *healthFails,
		TransferAttempts: *transferAttempts,
		Replicate:        *replicate,
		ReplayTail:       *replayTail,
		Faults:           inj,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "llbpgw:", err)
		os.Exit(1)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           g,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errCh := make(chan error, 2)
	go func() { errCh <- hs.ListenAndServe() }()
	var wln net.Listener
	if *wireAddr != "" {
		// Bind synchronously so a taken port fails startup instead of
		// surfacing later as a dead listener.
		wln, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "llbpgw:", err)
			os.Exit(1)
		}
		go func() { errCh <- g.ServeWire(wln) }()
	}
	names := make([]string, len(members))
	for i, b := range members {
		names[i] = b.Name
	}
	wireState := "disabled"
	if *wireAddr != "" {
		wireState = *wireAddr
	}
	fmt.Printf("llbpgw: routing on %s (wire %s) over %d backends [%s], vnodes=%d\n",
		*addr, wireState, len(members), strings.Join(names, " "), *vnodes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, "llbpgw:", err)
			os.Exit(1)
		}
		return
	case got := <-sig:
		fmt.Printf("llbpgw: %v — shutting down\n", got)
	}

	// The gateway holds no predictor state: shutdown is closing the
	// frontends and releasing downstream clients. Sessions stay live on
	// their backends; another gateway with the same membership picks them
	// up (and resynchronizes its cursors from the owners).
	if wln != nil {
		_ = wln.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	g.Close()

	st := g.Stats()
	fmt.Printf("llbpgw: routed %d batches (%d forward errors, %d retries), %d migrations (%d failed), %d reroutes, %d cursor resyncs\n",
		st.RoutedBatches, st.ForwardErrors, st.ForwardRetries, st.Migrations, st.MigrationErrors, st.Reroutes, st.CursorResyncs)
	if *replicate {
		fmt.Printf("llbpgw: replication: %d promotions (%d failed), %d standby syncs, %d batches replayed\n",
			st.Promotions, st.PromotionErrors, st.ReplicaSyncs, st.ReplayedBatches)
	}
}
