// Command llbpd serves the repository's branch predictors over the
// network: the last-level branch predictor as a service. Each client
// session owns one live predictor (any of the registry configurations)
// and streams batches of branch records to it; the daemon replies with
// per-branch predictions and running MPKI. Sessions live in a sharded
// map, batches run through a bounded worker pool, idle sessions are
// evicted after -ttl, and SIGTERM/SIGINT drains gracefully: in-flight
// batches flush, then the final per-session stats print.
//
// Two protocols front the same machinery. The JSON/HTTP API on -addr is
// the compatibility facade; the binary streaming protocol on -wire-addr
// (internal/wire: length-prefixed CRC-guarded frames, pipelined batches,
// typed NACKs instead of 429s) is the high-throughput path. Both share
// one session map, worker pool, drain barrier, and fault injector, so a
// session is reachable from either protocol under the same ID.
//
// Usage:
//
//	llbpd -addr :8713
//	llbpd -addr :8713 -wire-addr :8714
//	llbpd -addr :8713 -shards 32 -workers 8 -ttl 2m -max-batch 16384
//	llbpd -addr :8713 -snapshot-dir /var/lib/llbpd/snapshots
//
// With -snapshot-dir, idle-evicted sessions are checkpointed to disk
// instead of discarded — the next batch for the same session ID restores
// the predictor transparently — and drain checkpoints every remaining
// session so a restarted daemon with the same directory boots warm.
//
// API:
//
//	POST   /v1/sessions/{id}/predict   {"predictor":"llbp-x","branches":[...]}
//	GET    /v1/sessions/{id}           session stats
//	DELETE /v1/sessions/{id}           close session, return final stats
//	GET    /v1/stats                   server-wide stats (JSON)
//	GET    /metrics                    Prometheus text format
//	GET    /healthz                    liveness (200 even while draining)
//	GET    /readyz                     readiness (503 once draining begins)
//	GET    /debug/pprof/               profiling endpoints (with -pprof)
//
// Errors use a stable JSON envelope {"error":{"code":"...","message":"..."}}
// with machine-readable codes (bad_request, unknown_predictor,
// session_not_found, predictor_conflict, batch_too_large, draining,
// overloaded, internal). A batch that cannot acquire a worker slot within
// -admit-timeout is shed with 429 + Retry-After instead of queueing
// unboundedly; shed batches were never executed and are safe to resend.
//
// Drive it with cmd/llbpload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"llbpx/internal/faults"
	"llbpx/internal/serve"
	"llbpx/internal/wire"
)

func orDisabled(addr string) string {
	if addr == "" {
		return "disabled"
	}
	return addr
}

// parseSize parses a byte size with an optional K/M/G/T suffix (powers of
// 1024), e.g. "256M", "2G", "1048576". Empty means 0 (disabled).
func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	case 't', 'T':
		mult, s = 1<<40, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q (want e.g. 256M, 2G)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("size must be non-negative")
	}
	return n * mult, nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8713", "HTTP/JSON listen address")
		wireAddr  = flag.String("wire-addr", ":8714", "binary-protocol listen address (empty disables)")
		shards    = flag.Int("shards", 16, "session map shard count")
		workers   = flag.Int("workers", 0, "max concurrently executing batches (0 = GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 65536, "max branches per batch")
		ttl       = flag.Duration("ttl", 5*time.Minute, "evict sessions idle longer than this (<0 disables)")
		predictor = flag.String("predictor", "llbp-x", "default predictor for new sessions")
		snapDir   = flag.String("snapshot-dir", "", "checkpoint evicted/drained sessions here and restore them on demand (empty disables)")

		replicaEvery    = flag.Int("replica-every", 16, "ship a session's checkpoint to its standby after this many applied batches (gateway-driven replication)")
		replicaInterval = flag.Duration("replica-interval", 2*time.Second, "replication anti-entropy period: lagging or freshly placed standbys are re-shipped this often")
		pprofOn         = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service address")

		storeBudget = flag.String("store-budget", "", "cap the shared pattern store's resident bytes across all sessions, e.g. 256M or 2G; over-budget batches spill idle sessions LRU-first (empty disables)")
		storeShare  = flag.Bool("store-share", false, "deduplicate spilled sessions' frozen predictor state between sessions declaring the same workload fingerprint, and resume from the in-memory frozen tier before disk")

		admitTimeout = flag.Duration("admit-timeout", 2*time.Second, "shed a batch with 429 if no worker slot frees up within this (<0 waits forever)")

		// HTTP server timeouts: all non-zero by default so a slowloris
		// client (or a stalled peer) cannot pin a connection forever.
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server.ReadHeaderTimeout")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "http.Server.ReadTimeout (covers the whole request body)")
		writeTimeout      = flag.Duration("write-timeout", 2*time.Minute, "http.Server.WriteTimeout (covers batch execution + response)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server.IdleTimeout for keep-alive connections")

		injectSpec = flag.String("inject", "", "fault-injection spec for chaos drills, e.g. 'serve.snapshot.save:err=0.1;serve.batch.exec:lat=50ms' (empty disables)")
		injectSeed = flag.Int64("inject-seed", 1, "seed for the fault injector's per-site RNG streams")
	)
	flag.Parse()

	inj, err := faults.ParseSpec(*injectSpec, *injectSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llbpd:", err)
		os.Exit(2)
	}
	budgetBytes, err := parseSize(*storeBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llbpd: -store-budget:", err)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Shards:           *shards,
		Workers:          *workers,
		MaxBatch:         *maxBatch,
		SessionTTL:       *ttl,
		DefaultPredictor: *predictor,
		SnapshotDir:      *snapDir,
		EnablePprof:      *pprofOn,
		AdmitTimeout:     *admitTimeout,
		StoreBudget:      budgetBytes,
		StoreShare:       *storeShare,
		ReplicaEvery:     *replicaEvery,
		ReplicaInterval:  *replicaInterval,
		Faults:           inj,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	errCh := make(chan error, 2)
	go func() { errCh <- hs.ListenAndServe() }()
	var ws *wire.Server
	if *wireAddr != "" {
		// Bind synchronously so a taken port fails startup instead of
		// surfacing later as a dead listener.
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "llbpd:", err)
			os.Exit(1)
		}
		ws = wire.NewServer(srv, wire.Config{})
		go func() { errCh <- ws.Serve(wln) }()
	}
	fmt.Printf("llbpd: listening on %s (wire %s, shards=%d workers=%d ttl=%v default=%s)\n",
		*addr, orDisabled(*wireAddr), srv.Config().Shards, srv.Config().Workers, srv.Config().SessionTTL, *predictor)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, "llbpd:", err)
			os.Exit(1)
		}
		return
	case got := <-sig:
		fmt.Printf("llbpd: %v — draining\n", got)
	}

	// Refuse new batches, flush in-flight ones, then close the listeners.
	// Drain runs first so executing batches retire (wire clients see
	// draining NACKs, HTTP clients 503s, both retryable); tearing the wire
	// connections down after that may lose responses, which the sequencing
	// contract lets clients recover exactly.
	finals := srv.Drain()
	if ws != nil {
		_ = ws.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)

	snap := srv.Stats()
	fmt.Printf("llbpd: served %d batches / %d branches over %d sessions (%.0f branches/s)\n",
		snap.Batches, snap.Branches, snap.SessionsCreated, snap.BranchesPerSec)
	if snap.Shed > 0 || snap.Rejected > 0 || snap.Cancelled > 0 {
		fmt.Printf("llbpd: shed %d batches (429), rejected %d while draining, %d abandoned by clients\n",
			snap.Shed, snap.Rejected, snap.Cancelled)
	}
	if *snapDir != "" {
		fmt.Printf("llbpd: checkpoints in %s (%d saved, %d restored, %d write errors, %d quarantined)\n",
			*snapDir, snap.SnapshotSaves, snap.SnapshotRestores, snap.SnapshotSaveErrors, snap.SnapshotQuarantined)
	}
	if budgetBytes > 0 || *storeShare {
		fmt.Printf("llbpd: pattern store spilled %d sessions (budget %d bytes, %d frozen, %d thawed, %d dedup hits, %d shared restores)\n",
			snap.StoreSpills, snap.StoreBudgetBytes, snap.StoreFreezes, snap.StoreThaws, snap.StoreDedupHits, snap.StoreSharedRestores)
	}
	if len(finals) > 0 {
		fmt.Printf("%-24s %-10s %12s %12s %10s\n", "session", "predictor", "instructions", "mispredicts", "MPKI")
		for _, f := range finals {
			fmt.Printf("%-24s %-10s %12d %12d %10.4f\n",
				f.ID, f.Predictor, f.Stats.Instructions, f.Stats.Mispredicts, f.Stats.MPKI)
		}
	}
}
