// Command llbpd serves the repository's branch predictors over HTTP: the
// last-level branch predictor as a network service. Each client session
// owns one live predictor (any of the registry configurations) and
// streams batches of branch records to it; the daemon replies with
// per-branch predictions and running MPKI. Sessions live in a sharded
// map, batches run through a bounded worker pool, idle sessions are
// evicted after -ttl, and SIGTERM/SIGINT drains gracefully: in-flight
// batches flush, then the final per-session stats print.
//
// Usage:
//
//	llbpd -addr :8713
//	llbpd -addr :8713 -shards 32 -workers 8 -ttl 2m -max-batch 16384
//	llbpd -addr :8713 -snapshot-dir /var/lib/llbpd/snapshots
//
// With -snapshot-dir, idle-evicted sessions are checkpointed to disk
// instead of discarded — the next batch for the same session ID restores
// the predictor transparently — and drain checkpoints every remaining
// session so a restarted daemon with the same directory boots warm.
//
// API:
//
//	POST   /v1/sessions/{id}/predict   {"predictor":"llbp-x","branches":[...]}
//	GET    /v1/sessions/{id}           session stats
//	DELETE /v1/sessions/{id}           close session, return final stats
//	GET    /v1/stats                   server-wide stats (JSON)
//	GET    /metrics                    Prometheus text format
//	GET    /debug/pprof/               profiling endpoints (with -pprof)
//
// Errors use a stable JSON envelope {"error":{"code":"...","message":"..."}}
// with machine-readable codes (bad_request, unknown_predictor,
// session_not_found, predictor_conflict, batch_too_large, draining,
// internal).
//
// Drive it with cmd/llbpload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"llbpx/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8713", "listen address")
		shards    = flag.Int("shards", 16, "session map shard count")
		workers   = flag.Int("workers", 0, "max concurrently executing batches (0 = GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 65536, "max branches per batch")
		ttl       = flag.Duration("ttl", 5*time.Minute, "evict sessions idle longer than this (<0 disables)")
		predictor = flag.String("predictor", "llbp-x", "default predictor for new sessions")
		snapDir   = flag.String("snapshot-dir", "", "checkpoint evicted/drained sessions here and restore them on demand (empty disables)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service address")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Shards:           *shards,
		Workers:          *workers,
		MaxBatch:         *maxBatch,
		SessionTTL:       *ttl,
		DefaultPredictor: *predictor,
		SnapshotDir:      *snapDir,
		EnablePprof:      *pprofOn,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("llbpd: listening on %s (shards=%d workers=%d ttl=%v default=%s)\n",
		*addr, srv.Config().Shards, srv.Config().Workers, srv.Config().SessionTTL, *predictor)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "llbpd:", err)
			os.Exit(1)
		}
		return
	case got := <-sig:
		fmt.Printf("llbpd: %v — draining\n", got)
	}

	// Refuse new batches, flush in-flight ones, then close the listener.
	finals := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)

	snap := srv.Stats()
	fmt.Printf("llbpd: served %d batches / %d branches over %d sessions (%.0f branches/s)\n",
		snap.Batches, snap.Branches, snap.SessionsCreated, snap.BranchesPerSec)
	if *snapDir != "" {
		fmt.Printf("llbpd: checkpoints in %s (%d saved, %d restored, %d write errors)\n",
			*snapDir, snap.SnapshotSaves, snap.SnapshotRestores, snap.SnapshotSaveErrors)
	}
	if len(finals) > 0 {
		fmt.Printf("%-24s %-10s %12s %12s %10s\n", "session", "predictor", "instructions", "mispredicts", "MPKI")
		for _, f := range finals {
			fmt.Printf("%-24s %-10s %12d %12d %10.4f\n",
				f.ID, f.Predictor, f.Stats.Instructions, f.Stats.Mispredicts, f.Stats.MPKI)
		}
	}
}
