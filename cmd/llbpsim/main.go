// Command llbpsim runs one branch predictor over one workload (or a trace
// file) and prints accuracy and internal statistics — the repository's
// equivalent of the paper artifact's lightweight simulator binary.
//
// Usage:
//
//	llbpsim -workload nodeapp -predictor llbp-x
//	llbpsim -trace run.trc -predictor tsl-64k -warmup 1000000 -measure 2000000
//	llbpsim -champsim server.champsim.gz -predictor llbp
//	llbpsim -workload nodeapp -predictor llbp-x -save-state warm.snap
//	llbpsim -workload nodeapp -load-state warm.snap
//	llbpsim -workload kafka -predictor tsl-64k -attr -attr-top 10
//	llbpsim -workload kafka -predictor tsl-8k -attr -json > h2p.json
//	llbpsim -workload kafka -predictor 'bullseye(h2p_file=h2p.json)'
//	llbpsim -list
//	llbpsim -list-predictors -json
//
// Predictors: tsl-8k tsl-16k tsl-32k tsl-64k tsl-128k tsl-512k tsl-inf
// llbp llbp-0lat llbp-x bullseye tournament (plus anything registered via
// llbpx.RegisterPredictor). -predictor accepts parameterized specs such as
// "tournament(members=tsl-8k+llbp,chooser_bits=12)"; -list-predictors
// shows each predictor's parameter schema and storage estimate.
//
// -attr attaches a misprediction-attribution observer and prints the
// paper-style H2P table: the top static branches by misprediction share,
// with the provider-component breakdown of each branch's misses. With
// -json the export is machine-readable — the format bullseye's h2p_file=
// parameter consumes. SIGINT cancels the run cleanly and reports the
// partial result.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"llbpx"
	"llbpx/internal/tournament"
)

func main() {
	var (
		workloadName = flag.String("workload", "nodeapp", "preset workload name (see -list)")
		tracePath    = flag.String("trace", "", "binary trace file to replay instead of a workload")
		champPath    = flag.String("champsim", "", "ChampSim instruction trace to replay (plain or .gz)")
		predictor    = flag.String("predictor", "llbp-x", "predictor configuration")
		warmup       = flag.Uint64("warmup", 2_000_000, "warmup instructions")
		measure      = flag.Uint64("measure", 3_000_000, "measured instructions")
		seed         = flag.Uint64("seed", 0, "override the workload seed (0 = preset)")
		showStats    = flag.Bool("stats", false, "print predictor-internal counters")
		list         = flag.Bool("list", false, "list workloads and predictors, then exit")
		saveState    = flag.String("save-state", "", "checkpoint the predictor's learned state to this file after the run")
		loadState    = flag.String("load-state", "", "warm-start the predictor from a checkpoint file (overrides -predictor)")
		attr         = flag.Bool("attr", false, "attribute mispredictions per static branch and print the top-K table")
		attrTop      = flag.Int("attr-top", 20, "rows in the -attr table")
		listPreds    = flag.Bool("list-predictors", false, "list predictors with parameter schemas, then exit")
		chooserDump  = flag.Bool("chooser-stats", false, "after the run, dump the tournament meta-predictor's per-member reliability counters as JSON (tournament predictors only)")
		jsonOut      = flag.Bool("json", false, "machine-readable output: with -list-predictors the registry metadata, with -attr the attribution export")
	)
	flag.Parse()

	if *listPreds {
		infos := llbpx.Predictors()
		if *jsonOut {
			emitJSON(struct {
				Predictors []llbpx.PredictorInfo `json:"predictors"`
			}{infos})
			return
		}
		for _, info := range infos {
			fmt.Printf("%-12s %s\n", info.Name, info.Description)
			if info.StorageBytes > 0 {
				fmt.Printf("             storage ~%d bytes\n", info.StorageBytes)
			}
			for _, p := range info.Params {
				rng := ""
				if p.Kind == "int" {
					rng = fmt.Sprintf(" [%d..%d]", p.Min, p.Max)
				}
				local := ""
				if p.LocalOnly {
					local = ", local only"
				}
				fmt.Printf("             %s (%s%s, default %q%s): %s\n",
					p.Name, p.Kind, rng, p.Default, local, p.Desc)
			}
		}
		return
	}

	if *list {
		fmt.Println("workloads: ", llbpx.WorkloadNames())
		fmt.Println("predictors:")
		for _, info := range llbpx.Predictors() {
			fmt.Printf("  %-12s %s\n", info.Name, info.Description)
		}
		return
	}

	src, err := buildSource(*workloadName, *tracePath, *champPath, *seed)
	if err != nil {
		fatal(err)
	}
	predictorName := *predictor
	var p llbpx.Predictor
	if *loadState != "" {
		// A snapshot is a cache, never authoritative: any load failure
		// (missing file, corrupt bytes, incompatible version) warns and
		// falls back to a cold predictor instead of aborting the run.
		lp, name, lerr := llbpx.LoadPredictorFile(*loadState)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "llbpsim: cannot restore %s (%v); starting cold\n", *loadState, lerr)
		} else {
			p, predictorName = lp, name
			noticef(*jsonOut, "warm-started   %s from %s\n", name, *loadState)
		}
	}
	if p == nil {
		var perr error
		p, perr = llbpx.NewPredictorByName(predictorName)
		if perr != nil {
			fatal(perr)
		}
	}
	opt := llbpx.SimOptions{WarmupInstr: *warmup, MeasureInstr: *measure}
	var attribution *llbpx.MispredictAttribution
	if *attr {
		attribution = llbpx.NewMispredictAttribution()
		opt.Observer = attribution
	}

	// SIGINT/SIGTERM cancels the simulation at the next batch boundary; the
	// partial result (and attribution) accumulated so far still prints.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	res, err := llbpx.SimulateContext(ctx, p, src, opt)
	interrupted := err != nil && errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "llbpsim: interrupted — reporting partial results")
	}
	if *saveState != "" {
		if serr := llbpx.SavePredictorFile(*saveState, predictorName, p); serr != nil {
			fatal(serr)
		}
		noticef(*jsonOut, "checkpointed   %s -> %s\n", predictorName, *saveState)
	}

	if *chooserDump {
		// Pure JSON on stdout, same contract as -attr -json: pipe it into
		// jq or diff it across runs to see which member the chooser trusts
		// where and how decisively.
		cp, ok := p.(interface {
			ChooserStats() tournament.ChooserStats
		})
		if !ok {
			fatal(fmt.Errorf("-chooser-stats: predictor %q is not a tournament meta-predictor", res.Predictor))
		}
		emitJSON(cp.ChooserStats())
		if interrupted {
			os.Exit(130)
		}
		return
	}

	if *jsonOut && attribution != nil {
		// Pure JSON on stdout so `llbpsim -attr -json > h2p.json` feeds
		// straight into a bullseye(h2p_file=...) spec.
		export := attribution.ExportTopK(*attrTop)
		export.Predictor = res.Predictor
		export.Workload = *workloadName
		emitJSON(export)
		if interrupted {
			os.Exit(130)
		}
		return
	}

	m := res.Measured
	fmt.Printf("predictor      %s\n", res.Predictor)
	fmt.Printf("instructions   %d\n", m.Instructions)
	fmt.Printf("cond branches  %d\n", m.CondBranches)
	fmt.Printf("uncond         %d\n", m.UncondCount)
	fmt.Printf("mispredicts    %d\n", m.Mispredicts)
	fmt.Printf("MPKI           %.4f\n", res.MPKI())
	fmt.Printf("accuracy       %.4f%%\n", 100*m.Accuracy())
	if m.SecondLevelOK > 0 {
		fmt.Printf("2nd-level hits %d correct predictions\n", m.SecondLevelOK)
	}
	if *showStats && res.Extra != nil {
		keys := make([]string, 0, len(res.Extra))
		for k := range res.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("--- predictor counters ---")
		for _, k := range keys {
			fmt.Printf("%-28s %14.0f\n", k, res.Extra[k])
		}
	}
	if attribution != nil {
		fmt.Printf("\nstatic branches %d (measured), mispredictions attributed %d\n",
			attribution.StaticBranches(), attribution.Mispredicts())
		fmt.Println(attribution.Table(*attrTop).String())
	}
	if interrupted {
		os.Exit(130)
	}
}

func buildSource(workloadName, tracePath, champPath string, seed uint64) (llbpx.Source, error) {
	if champPath != "" {
		f, err := os.Open(champPath)
		if err != nil {
			return nil, err
		}
		// The process exits after the run; the file closes with it.
		return llbpx.NewChampSimReader(f)
	}
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		return llbpx.NewTraceReader(f)
	}
	prof, err := llbpx.WorkloadByName(workloadName)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		prof.Seed = seed
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		return nil, err
	}
	return llbpx.NewGenerator(prog), nil
}

// noticef prints a progress notice: to stderr under -json so stdout stays
// a pure machine-readable document (`llbpsim -attr -json > h2p.json` must
// capture only the export), to stdout otherwise.
func noticef(jsonOut bool, format string, args ...any) {
	w := os.Stdout
	if jsonOut {
		w = os.Stderr
	}
	fmt.Fprintf(w, format, args...)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llbpsim:", err)
	os.Exit(1)
}
