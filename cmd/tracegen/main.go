// Command tracegen synthesizes a server workload and writes its branch
// stream to a binary trace file, the stand-in for downloading the paper's
// ChampSim traces. The resulting file replays bit-identically through
// llbpsim -trace.
//
// Usage:
//
//	tracegen -workload whiskey -instructions 5000000 -o whiskey.trc
//	tracegen -workload tpcc -format champsim -o tpcc.champsim
package main

import (
	"flag"
	"fmt"
	"os"

	"llbpx"
)

func main() {
	var (
		workloadName = flag.String("workload", "nodeapp", "preset workload name")
		instructions = flag.Uint64("instructions", 5_000_000, "instructions to emit")
		out          = flag.String("o", "", "output file (required)")
		format       = flag.String("format", "llbp", "output format: llbp (compact binary) or champsim")
		seed         = flag.Uint64("seed", 0, "override the workload seed (0 = preset)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o output file is required"))
	}

	prof, err := llbpx.WorkloadByName(*workloadName)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		prof.Seed = *seed
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		fatal(err)
	}
	gen := llbpx.NewGenerator(prog)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	switch *format {
	case "champsim":
		instr, branches, err := llbpx.ExportChampSim(f, gen, *instructions)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d branches (%d instructions, champsim format) to %s\n", branches, instr, *out)
	case "llbp":
		w, err := llbpx.NewTraceWriter(f)
		if err != nil {
			fatal(err)
		}
		var emitted uint64
		for emitted < *instructions {
			b, _ := gen.Next()
			emitted += b.Instructions()
			if err := w.Write(b); err != nil {
				fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d branches (%d instructions) to %s\n", w.Count(), emitted, *out)
	default:
		fatal(fmt.Errorf("unknown format %q (llbp or champsim)", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
