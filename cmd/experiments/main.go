// Command experiments reproduces the paper's tables and figures. Each
// experiment prints a plain-text table followed by notes recording what
// the paper reported for the same artifact.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig12
//	experiments -exp all -quick
//	experiments -exp fig4 -workloads nodeapp,whiskey -measure 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"llbpx"
)

// chartOf renders the first numeric column of the result's table as a bar
// chart, or "" when nothing numeric is found.
func chartOf(res *llbpx.ExperimentResult) string {
	col := -1
	// Find the first column that is numeric in the first data row.
	if res.Table.NumRows() == 0 {
		return ""
	}
	first := res.Table.Row(0)
	for j := 1; j < len(first); j++ {
		if _, err := strconv.ParseFloat(first[j], 64); err == nil {
			col = j
			break
		}
	}
	if col < 0 {
		return ""
	}
	c := llbpx.NewBarChart("  ["+res.Table.Headers[col]+"]", 40)
	for i := 0; i < res.Table.NumRows(); i++ {
		row := res.Table.Row(i)
		if col >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		c.Add(row[0], v)
	}
	return c.String()
}

func main() {
	var (
		exp       = flag.String("exp", "", "experiment ID, or 'all' (see -list)")
		quick     = flag.Bool("quick", false, "reduced workload set and instruction budget")
		verify    = flag.Bool("verify", false, "check each artifact's paper-trend assertions (calibrated for the default scale; -quick runs are noisy)")
		chart     = flag.Bool("chart", false, "also render the first numeric column as an ASCII bar chart")
		list      = flag.Bool("list", false, "list experiments, then exit")
		workloads = flag.String("workloads", "", "comma-separated workload subset")
		warmup    = flag.Uint64("warmup", 0, "override warmup instructions")
		measure   = flag.Uint64("measure", 0, "override measured instructions")
		parallel  = flag.Int("parallel", 0, "cap concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments (in paper order):")
		for _, id := range llbpx.ExperimentIDs() {
			desc, _ := llbpx.DescribeExperiment(id)
			fmt.Printf("  %-10s %s\n", id, desc)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: experiments -exp <id>  (or -exp all)")
		}
		return
	}

	sc := llbpx.DefaultExperimentScale()
	if *quick {
		sc = llbpx.QuickExperimentScale()
	}
	if *workloads != "" {
		sc.Workloads = strings.Split(*workloads, ",")
	}
	if *warmup > 0 {
		sc.WarmupInstr = *warmup
	}
	if *measure > 0 {
		sc.MeasureInstr = *measure
	}
	if *parallel > 0 {
		sc.Parallelism = *parallel
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = llbpx.ExperimentIDs()
	}
	failures := 0
	errored := 0
	for _, id := range ids {
		start := time.Now()
		res, err := llbpx.RunExperiment(id, sc)
		if err != nil {
			// Report and keep going: an -exp all run should surface every
			// failing experiment, not stop at the first.
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			errored++
			continue
		}
		fmt.Println(res.Table.String())
		if *chart {
			if c := chartOf(res); c != "" {
				fmt.Println(c)
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("  note: %s\n", note)
		}
		if *verify {
			if violations := llbpx.VerifyExperiment(res); len(violations) > 0 {
				failures += len(violations)
				for _, viol := range violations {
					fmt.Printf("  TREND-FAIL: %s\n", viol)
				}
			} else if llbpx.HasTrendCheck(id) {
				fmt.Printf("  TREND-PASS: %s\n", id)
			}
		}
		fmt.Printf("  (%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if errored > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", errored, len(ids))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d trend assertions failed\n", failures)
	}
	switch {
	case errored > 0:
		os.Exit(1)
	case failures > 0:
		os.Exit(2)
	}
}
