package llbpx_test

import (
	"bytes"
	"testing"

	"llbpx"
)

// TestCapacityOrdering checks the reproduction's headline invariant on a
// real workload: more predictor capacity must not hurt, and the infinite
// TAGE bounds everything from below.
func TestCapacityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration ordering check skipped in -short")
	}
	prof, err := llbpx.WorkloadByName("nodeapp")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := llbpx.SimOptions{WarmupInstr: 1_000_000, MeasureInstr: 1_500_000}
	mpki := func(build func() (llbpx.Predictor, error)) float64 {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := llbpx.Simulate(p, llbpx.NewGenerator(prog), opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.MPKI()
	}
	m64 := mpki(func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL64K()) })
	m512 := mpki(func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL512K()) })
	mInf := mpki(func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSLInf()) })
	mX := mpki(func() (llbpx.Predictor, error) { return llbpx.NewLLBPX(llbpx.LLBPXDefault()) })

	if m512 >= m64 {
		t.Errorf("512K TSL (%.3f) should clearly beat 64K (%.3f)", m512, m64)
	}
	if mInf > m512*1.02 {
		t.Errorf("Inf TSL (%.3f) should not lose to 512K (%.3f)", mInf, m512)
	}
	if mX > m64*1.02 {
		t.Errorf("LLBP-X (%.3f) should not lose to its own baseline (%.3f)", mX, m64)
	}
	if m64 < 3.0 || m64 > 6.5 {
		t.Errorf("nodeapp 64K MPKI %.3f drifted from its Table I calibration (4.43)", m64)
	}
}

// TestTraceReplayEquivalence verifies that simulating through the binary
// trace format is bit-identical to simulating the generator directly —
// the property that makes cmd/tracegen artifacts trustworthy.
func TestTraceReplayEquivalence(t *testing.T) {
	prof, err := llbpx.WorkloadByName("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	// Capture a bounded stream into the trace format.
	gen := llbpx.NewGenerator(prog)
	var branches []llbpx.Branch
	var instr uint64
	for instr < 600_000 {
		b, _ := gen.Next()
		branches = append(branches, b)
		instr += b.Instructions()
	}
	var buf bytes.Buffer
	if err := llbpx.WriteTrace(&buf, branches); err != nil {
		t.Fatal(err)
	}

	opt := llbpx.SimOptions{WarmupInstr: 200_000, MeasureInstr: 300_000}
	direct, err := llbpx.NewTSL(llbpx.TSL64K())
	if err != nil {
		t.Fatal(err)
	}
	dres, err := llbpx.Simulate(direct, llbpx.NewSliceSource(branches), opt)
	if err != nil {
		t.Fatal(err)
	}

	reader, err := llbpx.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := llbpx.NewTSL(llbpx.TSL64K())
	if err != nil {
		t.Fatal(err)
	}
	rres, err := llbpx.Simulate(replay, reader, opt)
	if err != nil {
		t.Fatal(err)
	}

	if dres.Measured.Mispredicts != rres.Measured.Mispredicts ||
		dres.Measured.CondBranches != rres.Measured.CondBranches ||
		dres.Measured.Instructions != rres.Measured.Instructions {
		t.Fatalf("trace replay diverged: direct=%+v replay=%+v", dres.Measured, rres.Measured)
	}
}

// TestSecondLevelActivity asserts the hierarchical predictors actually
// exercise their second level on a server workload (overrides, prefetches,
// writebacks) rather than silently degrading to the baseline.
func TestSecondLevelActivity(t *testing.T) {
	prof, err := llbpx.WorkloadByName("charlie")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	p, err := llbpx.NewLLBPX(llbpx.LLBPXDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := llbpx.Simulate(p, llbpx.NewGenerator(prog),
		llbpx.SimOptions{WarmupInstr: 500_000, MeasureInstr: 800_000})
	if err != nil {
		t.Fatal(err)
	}
	p.FinishMeasurement()
	st := p.Stats()
	for _, key := range []string{
		"llbpx.overrides", "llbpx.useful", "llbpx.allocs",
		"llbpx.prefetch.issued", "llbpx.store.writes",
	} {
		if st[key] == 0 {
			t.Errorf("%s == 0: second level inactive", key)
		}
	}
	if res.Measured.SecondLevelOK == 0 {
		t.Error("no correct second-level predictions observed")
	}
}
